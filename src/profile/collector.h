// The profile collector: sharded hot-path recording, merge-on-snapshot.
//
// Mirrors metrics::Collector's architecture exactly (see
// metrics/collector.h): one Collector per Runtime when profiling is on;
// every event-serialisation context registers a Shard and is that shard's
// only writer (per-thread contexts are single-threaded by contract, global
// shard contexts are serialised by their shard lock), so the write path is a
// relaxed atomic load + store pair — no RMW, no fence, no lock — and the
// merger's concurrent relaxed loads see word-consistent monotone values.
// Shards outlive their contexts (the Collector owns them) so short-lived
// threads still contribute; a central lock-guarded spill block absorbs
// writes that race a late Register().
#ifndef TESLA_PROFILE_COLLECTOR_H_
#define TESLA_PROFILE_COLLECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "profile/profile.h"
#include "support/spinlock.h"

namespace tesla::profile {

// One context's recording block: kClassStride relaxed-atomic words per
// class, class-major. Created by Collector::RegisterShard and owned by the
// Collector for its whole lifetime.
class Shard {
 public:
  explicit Shard(size_t class_capacity);

  size_t class_capacity() const { return class_capacity_; }

  // Single-writer add. Caller guarantees class_id < class_capacity().
  void Add(uint32_t class_id, Cell cell, uint64_t amount = 1) {
    Word(class_id * kClassStride + static_cast<size_t>(cell), amount);
  }

  // Single-writer max (fanout peaks).
  void Peak(uint32_t class_id, Cell cell, uint64_t value) {
    std::atomic<uint64_t>& word =
        cells_[class_id * kClassStride + static_cast<size_t>(cell)];
    if (value > word.load(std::memory_order_relaxed)) {
      word.store(value, std::memory_order_relaxed);
    }
  }

  // Partial-binding attribution for tracked key variable `key_pos` (its
  // position in the class's ascending-variable key order).
  void AddVarPartial(uint32_t class_id, size_t key_pos) {
    Word(class_id * kClassStride + kVarPartialOffset + key_pos, 1);
  }

  // Sets one linear-counting bit for `hash` in key variable `key_pos`'s
  // sketch. Single-writer, so load + or + store needs no RMW.
  void SketchValue(uint32_t class_id, size_t key_pos, uint64_t hash) {
    const size_t bit = hash & (kSketchBits - 1);
    std::atomic<uint64_t>& word =
        cells_[class_id * kClassStride + kSketchOffset + key_pos * kSketchWords +
               (bit >> 6)];
    const uint64_t mask = uint64_t{1} << (bit & 63);
    const uint64_t old = word.load(std::memory_order_relaxed);
    if ((old & mask) == 0) {
      word.store(old | mask, std::memory_order_relaxed);
    }
  }

  // Per-shard latency-sampling tick (single writer; plain field).
  uint32_t NextTick() { return tick_++; }

  // Hot-path variant: the caller hoists the class's word-block base once and
  // writes base-relative, so the compiler is not forced to reload `cells_`
  // after every store (the member accessors above can alias it).
  std::atomic<uint64_t>* ClassCells(uint32_t class_id) {
    return cells_.get() + class_id * kClassStride;
  }
  static void AddAt(std::atomic<uint64_t>* base, Cell cell, uint64_t amount = 1) {
    std::atomic<uint64_t>& word = base[static_cast<size_t>(cell)];
    word.store(word.load(std::memory_order_relaxed) + amount, std::memory_order_relaxed);
  }
  static void PeakAt(std::atomic<uint64_t>* base, Cell cell, uint64_t value) {
    std::atomic<uint64_t>& word = base[static_cast<size_t>(cell)];
    if (value > word.load(std::memory_order_relaxed)) {
      word.store(value, std::memory_order_relaxed);
    }
  }
  static void VarPartialAt(std::atomic<uint64_t>* base, size_t key_pos) {
    std::atomic<uint64_t>& word = base[kVarPartialOffset + key_pos];
    word.store(word.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  static void SketchAt(std::atomic<uint64_t>* base, size_t key_pos, uint64_t hash) {
    const size_t bit = hash & (kSketchBits - 1);
    std::atomic<uint64_t>& word = base[kSketchOffset + key_pos * kSketchWords + (bit >> 6)];
    const uint64_t mask = uint64_t{1} << (bit & 63);
    const uint64_t old = word.load(std::memory_order_relaxed);
    if ((old & mask) == 0) {
      word.store(old | mask, std::memory_order_relaxed);
    }
  }

 private:
  friend class Collector;

  void Word(size_t index, uint64_t amount) {
    std::atomic<uint64_t>& cell = cells_[index];
    cell.store(cell.load(std::memory_order_relaxed) + amount, std::memory_order_relaxed);
  }

  size_t class_capacity_;
  uint32_t tick_ = 0;
  // class_capacity_ * kClassStride words, class-major.
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
};

class Collector {
 public:
  Collector() = default;
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  // Thread-safe; the returned shard stays valid for the Collector's lifetime
  // and is sized for the classes known now (EnsureClassCapacity).
  Shard* RegisterShard();

  // Grows the spill block (and the capacity granted to future shards) to
  // `count` classes. Called at Register() time, before contexts re-register.
  void EnsureClassCapacity(size_t count);

  // Cold path for writers whose shard predates the current class count.
  void AddSpill(uint32_t class_id, Cell cell, uint64_t amount = 1);

  // Sums (or max-merges, per kCellMaxMerge; ORs sketches) every shard's and
  // the spill block's words for classes [0, class_count) into `out`
  // (class-major, kClassStride words per class).
  void Merge(size_t class_count, uint64_t* out) const;

  // Zeroes every shard and the spill block (profile-window support; see
  // Runtime::ResetStats()). Call at a quiescent point for exact windows.
  void Reset();

 private:
  mutable Spinlock lock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t class_capacity_ = 0;
  std::vector<uint64_t> spill_;  // class-major, guarded by lock_
};

}  // namespace tesla::profile

#endif  // TESLA_PROFILE_COLLECTOR_H_
