// tesla::profile — the workload profiler's vocabulary.
//
// Where tesla::metrics answers "what did the runtime do" (counters the
// operator watches), tesla::profile answers "what shape is the workload"
// (numbers the *plan compiler* consumes): per-class instance fan-out,
// binding-key cardinality, and how often dispatch fell off the indexed fast
// path onto a full scan. A profile is collected with the same single-writer
// per-context shard discipline as the metrics collector (~ns/event), rides
// the TSLATRC capture footer (v5), merges deterministically across fleet
// shards, and feeds back into Register() as PlanHints — per-class capacity
// and secondary-index decisions derived from data instead of global knobs.
//
// This header is the single source of truth for the per-class cell schema
// (one X-macro drives the enum, the merge loops, the wire footer and both
// exposition formats) and the distinct-key sketch layout.
#ifndef TESLA_PROFILE_PROFILE_H_
#define TESLA_PROFILE_PROFILE_H_

#include <cstddef>
#include <cstdint>

namespace tesla::profile {

// The per-class profile cell schema: X(name, help, deterministic, max_merge).
//
//   deterministic — 1 when a faithful re-run of the same per-class event
//     order must reproduce the cell exactly (the differential tests compare
//     these across sync / async-queue / multi-consumer dispatch); 0 for
//     wall-clock cells that legitimately vary run to run.
//   max_merge — 1 when shards/fleet captures combine by max (peaks), 0 for
//     ordinary sums. Both rules are commutative and associative, so fleet
//     merges are order-independent byte for byte.
#define TESLA_PROFILE_CELLS(X)                                                 \
  X(dispatches, "events dispatched to the class's instances", 1, 0)            \
  X(index_probes, "dispatches served by one full-key index-bucket probe", 1, 0) \
  X(prefix_probes, "dispatches served by the secondary prefix-key index", 1, 0) \
  X(scan_fallbacks, "dispatches that fell back to a full instance scan", 1, 0) \
  X(partial_bound, "scan fallbacks whose bindings covered only part of the key set", 1, 0) \
  X(small_population, "scan fallbacks forced by the index_min_population gate", 1, 0) \
  X(fanout_sum, "sum of live-instance populations sampled at dispatch", 1, 0)  \
  X(fanout_peak, "largest live-instance population observed at dispatch", 1, 1) \
  X(latency_ns, "sampled dispatch latency total, nanoseconds (wall clock)", 0, 0) \
  X(latency_samples, "dispatch latency samples taken (1-in-64 sampling)", 0, 0) \
  X(deadline_arms, "within_ms() deadlines armed for the class", 1, 0)          \
  X(deadline_expiries, "within_ms() deadlines that expired for the class", 1, 0)

enum class Cell : uint8_t {
#define TESLA_PROFILE_ENUM(name, help, det, mx) name,
  TESLA_PROFILE_CELLS(TESLA_PROFILE_ENUM)
#undef TESLA_PROFILE_ENUM
};

inline constexpr size_t kCellCount = 0
#define TESLA_PROFILE_COUNT(name, help, det, mx) +1
    TESLA_PROFILE_CELLS(TESLA_PROFILE_COUNT)
#undef TESLA_PROFILE_COUNT
    ;

inline constexpr const char* kCellNames[kCellCount] = {
#define TESLA_PROFILE_NAME(name, help, det, mx) #name,
    TESLA_PROFILE_CELLS(TESLA_PROFILE_NAME)
#undef TESLA_PROFILE_NAME
};

inline constexpr const char* kCellHelp[kCellCount] = {
#define TESLA_PROFILE_HELP(name, help, det, mx) help,
    TESLA_PROFILE_CELLS(TESLA_PROFILE_HELP)
#undef TESLA_PROFILE_HELP
};

inline constexpr bool kCellDeterministic[kCellCount] = {
#define TESLA_PROFILE_DET(name, help, det, mx) det != 0,
    TESLA_PROFILE_CELLS(TESLA_PROFILE_DET)
#undef TESLA_PROFILE_DET
};

inline constexpr bool kCellMaxMerge[kCellCount] = {
#define TESLA_PROFILE_MAX(name, help, det, mx) mx != 0,
    TESLA_PROFILE_CELLS(TESLA_PROFILE_MAX)
#undef TESLA_PROFILE_MAX
};

// Distinct-key sketches: per tracked key variable, a 256-bit linear-counting
// bitmap. A binding value hashes to one of m = 256 bits; the distinct-value
// estimate is -m·ln(V) where V is the fraction of zero bits. Standard error
// is ≈ √m·(e^{n/m} − n/m − 1)/n — under 10% up to n ≈ m and the estimate
// saturates (reported as ≥ the countable range) once the bitmap fills. The
// plan compiler only needs "a handful vs hundreds", so a fixed 32-byte sketch
// per variable beats per-value storage; merging two sketches is bitwise OR
// (commutative, associative, idempotent — fleet-merge safe).
inline constexpr size_t kSketchBits = 256;
inline constexpr size_t kSketchWords = kSketchBits / 64;

// Key variables tracked per class (sketch + partial-binding attribution).
// Classes with more key variables profile only the first four in ascending
// variable order; kMaxVariables is 16 but real assertions key on 1–3.
inline constexpr size_t kMaxKeyVars = 4;

// Per-class stride in a shard's cell block: the schema cells, one
// partial-binding counter per tracked key variable, then the sketch words.
inline constexpr size_t kVarPartialOffset = kCellCount;
inline constexpr size_t kSketchOffset = kCellCount + kMaxKeyVars;
inline constexpr size_t kClassStride = kCellCount + kMaxKeyVars + kMaxKeyVars * kSketchWords;

}  // namespace tesla::profile

#endif  // TESLA_PROFILE_PROFILE_H_
