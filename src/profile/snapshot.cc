#include "profile/snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <numeric>

namespace tesla::profile {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, static_cast<size_t>(n) < sizeof(buf) ? static_cast<size_t>(n)
                                                          : sizeof(buf) - 1);
  }
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendPromLabel(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

size_t SketchPopcount(const uint64_t* words) {
  size_t ones = 0;
  for (size_t w = 0; w < kSketchWords; w++) {
    ones += static_cast<size_t>(__builtin_popcountll(words[w]));
  }
  return ones;
}

}  // namespace

double ClassProfile::EstimatedDistinct(size_t p) const {
  if (p >= kMaxKeyVars) {
    return 0;
  }
  const size_t ones = SketchPopcount(sketch[p]);
  if (ones == 0) {
    return 0;
  }
  if (ones >= kSketchBits) {
    return static_cast<double>(kSketchBits);  // saturated: "at least this many"
  }
  const double m = static_cast<double>(kSketchBits);
  const double zero_fraction = (m - static_cast<double>(ones)) / m;
  return -m * std::log(zero_fraction);
}

double ClassProfile::MeanFanout() const {
  const uint64_t dispatches = cell(Cell::dispatches);
  if (dispatches == 0) {
    return 0;
  }
  return static_cast<double>(cell(Cell::fanout_sum)) / static_cast<double>(dispatches);
}

void MergeInto(Snapshot* inout, const Snapshot& in) {
  inout->pool_high_water = std::max(inout->pool_high_water, in.pool_high_water);
  inout->pool_capacity = std::max(inout->pool_capacity, in.pool_capacity);
  // Union by name through an ordered map so the merged class order is a
  // function of the class *set*, never of input order.
  std::map<std::string, ClassProfile> merged;
  for (const ClassProfile& cls : inout->classes) {
    merged[cls.name] = cls;
  }
  for (const ClassProfile& cls : in.classes) {
    auto [it, fresh] = merged.emplace(cls.name, cls);
    if (fresh) {
      continue;
    }
    ClassProfile& dst = it->second;
    if (dst.key_vars.empty()) {
      dst.key_vars = cls.key_vars;
    }
    for (size_t i = 0; i < kCellCount; i++) {
      if (kCellMaxMerge[i]) {
        dst.cells[i] = std::max(dst.cells[i], cls.cells[i]);
      } else {
        dst.cells[i] += cls.cells[i];
      }
    }
    for (size_t p = 0; p < kMaxKeyVars; p++) {
      dst.var_partial[p] += cls.var_partial[p];
      for (size_t w = 0; w < kSketchWords; w++) {
        dst.sketch[p][w] |= cls.sketch[p][w];
      }
    }
  }
  inout->classes.clear();
  inout->classes.reserve(merged.size());
  for (auto& [name, cls] : merged) {
    inout->classes.push_back(std::move(cls));
  }
}

std::string ToJson(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  AppendF(&out,
          "{\n  \"pool_capacity\": %" PRIu64 ",\n  \"pool_high_water\": %" PRIu64
          ",\n  \"classes\": [",
          snapshot.pool_capacity, snapshot.pool_high_water);
  for (size_t c = 0; c < snapshot.classes.size(); c++) {
    const ClassProfile& cls = snapshot.classes[c];
    AppendF(&out, "%s\n    {\"name\": ", c == 0 ? "" : ",");
    AppendJsonString(&out, cls.name);
    out.append(", \"cells\": {");
    for (size_t i = 0; i < kCellCount; i++) {
      AppendF(&out, "%s\"%s\": %" PRIu64, i == 0 ? "" : ", ", kCellNames[i],
              cls.cells[i]);
    }
    AppendF(&out, "},\n     \"mean_fanout\": %.2f, \"keys\": [", cls.MeanFanout());
    size_t tracked = 0;
    for (size_t p = 0; p < cls.key_vars.size() && p < kMaxKeyVars; p++, tracked++) {
      AppendF(&out,
              "%s\n       {\"var\": %u, \"partial_bound\": %" PRIu64
              ", \"distinct_estimate\": %.1f}",
              p == 0 ? "" : ",", cls.key_vars[p], cls.var_partial[p],
              cls.EstimatedDistinct(p));
    }
    out.append(tracked == 0 ? "]}" : "\n     ]}");
  }
  out.append(snapshot.classes.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out;
}

std::string ToPrometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  AppendF(&out,
          "# HELP tesla_profile_pool_capacity instance-pool slots per context\n"
          "# TYPE tesla_profile_pool_capacity gauge\n"
          "tesla_profile_pool_capacity %" PRIu64 "\n"
          "# HELP tesla_profile_pool_high_water peak live instances in any context pool\n"
          "# TYPE tesla_profile_pool_high_water gauge\n"
          "tesla_profile_pool_high_water %" PRIu64 "\n",
          snapshot.pool_capacity, snapshot.pool_high_water);
  for (size_t i = 0; i < kCellCount; i++) {
    // Peaks are gauges (they rewind across ResetStats); the rest are
    // monotone counters.
    const bool gauge = kCellMaxMerge[i];
    AppendF(&out, "# HELP tesla_profile_%s%s %s\n# TYPE tesla_profile_%s%s %s\n",
            kCellNames[i], gauge ? "" : "_total", kCellHelp[i], kCellNames[i],
            gauge ? "" : "_total", gauge ? "gauge" : "counter");
    for (const ClassProfile& cls : snapshot.classes) {
      AppendF(&out, "tesla_profile_%s%s{automaton=\"", kCellNames[i],
              gauge ? "" : "_total");
      AppendPromLabel(&out, cls.name);
      AppendF(&out, "\"} %" PRIu64 "\n", cls.cells[i]);
    }
  }
  out.append(
      "# HELP tesla_profile_key_distinct_estimate linear-counting distinct-value "
      "estimate per key variable\n"
      "# TYPE tesla_profile_key_distinct_estimate gauge\n");
  for (const ClassProfile& cls : snapshot.classes) {
    size_t tracked = 0;
    for (size_t p = 0; p < cls.key_vars.size() && p < kMaxKeyVars; p++, tracked++) {
      out.append("tesla_profile_key_distinct_estimate{automaton=\"");
      AppendPromLabel(&out, cls.name);
      AppendF(&out, "\",var=\"%u\"} %.1f\n", cls.key_vars[p], cls.EstimatedDistinct(p));
    }
  }
  out.append(
      "# HELP tesla_profile_key_partial_bound_total scan fallbacks where this key "
      "variable was bound\n"
      "# TYPE tesla_profile_key_partial_bound_total counter\n");
  for (const ClassProfile& cls : snapshot.classes) {
    size_t tracked = 0;
    for (size_t p = 0; p < cls.key_vars.size() && p < kMaxKeyVars; p++, tracked++) {
      out.append("tesla_profile_key_partial_bound_total{automaton=\"");
      AppendPromLabel(&out, cls.name);
      AppendF(&out, "\",var=\"%u\"} %" PRIu64 "\n", cls.key_vars[p], cls.var_partial[p]);
    }
  }
  return out;
}

std::string RenderReport(const Snapshot& snapshot) {
  std::string out;
  out.append("workload profile\n");
  AppendF(&out, "  context pool: %" PRIu64 "/%" PRIu64 " slots at peak (%.0f%% headroom)\n",
          snapshot.pool_high_water, snapshot.pool_capacity,
          snapshot.pool_capacity > 0
              ? 100.0 * (1.0 - static_cast<double>(snapshot.pool_high_water) /
                                   static_cast<double>(snapshot.pool_capacity))
              : 0.0);

  // Hot-class ranking: by dispatch volume, descending (name-ordered ties).
  std::vector<const ClassProfile*> ranked;
  ranked.reserve(snapshot.classes.size());
  for (const ClassProfile& cls : snapshot.classes) {
    ranked.push_back(&cls);
  }
  std::sort(ranked.begin(), ranked.end(), [](const ClassProfile* a, const ClassProfile* b) {
    if (a->cell(Cell::dispatches) != b->cell(Cell::dispatches)) {
      return a->cell(Cell::dispatches) > b->cell(Cell::dispatches);
    }
    return a->name < b->name;
  });

  out.append("\nhot classes (by dispatch volume):\n");
  AppendF(&out, "  %-40s %12s %10s %10s %10s %10s\n", "automaton", "dispatches",
          "probes", "scans", "fanout", "peak");
  size_t shown = 0;
  for (const ClassProfile* cls : ranked) {
    if (cls->cell(Cell::dispatches) == 0 || shown++ >= 20) {
      continue;
    }
    AppendF(&out, "  %-40s %12" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10.1f %10" PRIu64 "\n",
            cls->name.c_str(), cls->cell(Cell::dispatches),
            cls->cell(Cell::index_probes) + cls->cell(Cell::prefix_probes),
            cls->cell(Cell::scan_fallbacks), cls->MeanFanout(),
            cls->cell(Cell::fanout_peak));
  }

  out.append("\nscan-fallback offenders:\n");
  bool offender = false;
  for (const ClassProfile* cls : ranked) {
    const uint64_t scans = cls->cell(Cell::scan_fallbacks);
    if (scans == 0) {
      continue;
    }
    offender = true;
    AppendF(&out, "  %s: %" PRIu64 " scans (%" PRIu64 " partial-bound, %" PRIu64
                  " under the population gate)\n",
            cls->name.c_str(), scans, cls->cell(Cell::partial_bound),
            cls->cell(Cell::small_population));
    const size_t tracked = std::min(cls->key_vars.size(), kMaxKeyVars);
    for (size_t p = 0; p < tracked; p++) {
      if (cls->var_partial[p] == 0) {
        continue;
      }
      AppendF(&out,
              "    key var %u bound in %" PRIu64 " of them (≈%.0f distinct values)"
              " — prefix-index candidate\n",
              cls->key_vars[p], cls->var_partial[p], cls->EstimatedDistinct(p));
    }
  }
  if (!offender) {
    out.append("  none — every indexed dispatch probed\n");
  }

  const ClassProfile* peak_cls = nullptr;
  for (const ClassProfile* cls : ranked) {
    if (peak_cls == nullptr ||
        cls->cell(Cell::fanout_peak) > peak_cls->cell(Cell::fanout_peak)) {
      peak_cls = cls;
    }
  }
  if (peak_cls != nullptr && peak_cls->cell(Cell::fanout_peak) > 0) {
    AppendF(&out, "\ncapacity: peak per-class fan-out %" PRIu64 " (%s)\n",
            peak_cls->cell(Cell::fanout_peak), peak_cls->name.c_str());
  }
  const uint64_t samples =
      std::accumulate(ranked.begin(), ranked.end(), uint64_t{0},
                      [](uint64_t acc, const ClassProfile* cls) {
                        return acc + cls->cell(Cell::latency_samples);
                      });
  if (samples > 0) {
    uint64_t ns = 0;
    for (const ClassProfile* cls : ranked) {
      ns += cls->cell(Cell::latency_ns);
    }
    AppendF(&out, "sampled dispatch latency: %.0f ns/event over %" PRIu64 " samples\n",
            static_cast<double>(ns) / static_cast<double>(samples), samples);
  }
  return out;
}

}  // namespace tesla::profile
