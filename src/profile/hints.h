// PlanHints: the feedback half of tesla::profile.
//
// A profile snapshot distils into per-class plan hints that Register()
// consumes at plan-compile time:
//
//   * capacity — expected per-class instance fan-out. The runtime sizes each
//     context's SlotPool from the sum of capacity hints (replacing the
//     single instances_per_context knob with data): any context can host any
//     class's instances, so the sum is the safe per-pool bound.
//   * min_population — per-class override of the index_min_population gate.
//     A class whose profile shows the gate forcing scans on a steady
//     population gets the probe turned back on.
//   * prefix_key_pos — position (in the class's ascending-variable key
//     order) of the key variable to build a secondary prefix index on, or -1.
//     Chosen for classes whose scans are dominated by partially-bound
//     dispatches that do bind this variable.
//
// Hints travel as a line-oriented text file (one class per line) emitted by
// `tesla-trace profile --hints-out` / `mac_audit --profile-out` and read
// back via `--plan-hints`; unknown classes and malformed lines are reported,
// never silently applied.
#ifndef TESLA_PROFILE_HINTS_H_
#define TESLA_PROFILE_HINTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "profile/snapshot.h"
#include "support/result.h"

namespace tesla::profile {

struct ClassHint {
  std::string name;
  // Expected live-instance fan-out (0 = no hint; plan falls back to the
  // instances_per_context share).
  uint32_t capacity = 0;
  // Per-class index_min_population override (negative = keep the global
  // knob; 0 probes unconditionally).
  int32_t min_population = -1;
  // Secondary prefix-index key position, or -1 for none.
  int32_t prefix_key_pos = -1;
};

struct PlanHints {
  std::vector<ClassHint> classes;

  bool empty() const { return classes.empty(); }
  const ClassHint* Find(const std::string& name) const {
    for (const ClassHint& hint : classes) {
      if (hint.name == name) {
        return &hint;
      }
    }
    return nullptr;
  }
};

// Distils a merged profile into hints (deterministic: depends only on the
// snapshot's contents). Classes that never dispatched get no hint line.
PlanHints HintsFromSnapshot(const Snapshot& snapshot);

// Text round-trip. Format, one class per line (# comments, blank lines ok):
//   class <name-length>:<name> capacity=<n> min_population=<n> prefix_key_pos=<n>
// The length prefix keeps names with spaces unambiguous.
std::string HintsToText(const PlanHints& hints);
Result<PlanHints> ParseHints(const std::string& text);

// File convenience wrappers (used by the CLI tools and examples).
Status WriteHintsFile(const std::string& path, const PlanHints& hints);
Result<PlanHints> ReadHintsFile(const std::string& path);

}  // namespace tesla::profile

#endif  // TESLA_PROFILE_HINTS_H_
