#include "profile/collector.h"

#include <algorithm>

namespace tesla::profile {
namespace {

// Merge one class-major word block into `out` honouring the schema's merge
// rule: schema cells are summed or max-merged per kCellMaxMerge; the
// per-variable partial counters sum; sketch words OR.
void MergeWords(uint64_t* out, size_t classes, const uint64_t* in) {
  for (size_t c = 0; c < classes; c++) {
    uint64_t* dst = out + c * kClassStride;
    const uint64_t* src = in + c * kClassStride;
    for (size_t i = 0; i < kCellCount; i++) {
      if (kCellMaxMerge[i]) {
        dst[i] = src[i] > dst[i] ? src[i] : dst[i];
      } else {
        dst[i] += src[i];
      }
    }
    for (size_t i = kVarPartialOffset; i < kSketchOffset; i++) {
      dst[i] += src[i];
    }
    for (size_t i = kSketchOffset; i < kClassStride; i++) {
      dst[i] |= src[i];
    }
  }
}

}  // namespace

Shard::Shard(size_t class_capacity) : class_capacity_(class_capacity) {
  if (class_capacity_ > 0) {
    cells_ = std::make_unique<std::atomic<uint64_t>[]>(class_capacity_ * kClassStride);
  }
}

Shard* Collector::RegisterShard() {
  LockGuard<Spinlock> guard(lock_);
  shards_.push_back(std::make_unique<Shard>(class_capacity_));
  return shards_.back().get();
}

void Collector::EnsureClassCapacity(size_t count) {
  LockGuard<Spinlock> guard(lock_);
  if (count > class_capacity_) {
    class_capacity_ = count;
    spill_.resize(count * kClassStride, 0);
  }
}

void Collector::AddSpill(uint32_t class_id, Cell cell, uint64_t amount) {
  LockGuard<Spinlock> guard(lock_);
  const size_t word = class_id * kClassStride + static_cast<size_t>(cell);
  if (word < spill_.size()) {
    spill_[word] += amount;
  }
}

void Collector::Merge(size_t class_count, uint64_t* out) const {
  const size_t words = class_count * kClassStride;
  for (size_t i = 0; i < words; i++) {
    out[i] = 0;
  }
  // Relaxed snapshot of each shard, then one rule-aware merge per shard.
  std::vector<uint64_t> scratch;
  LockGuard<Spinlock> guard(lock_);
  for (const auto& shard : shards_) {
    const size_t classes =
        shard->class_capacity_ < class_count ? shard->class_capacity_ : class_count;
    if (classes == 0) {
      continue;
    }
    scratch.resize(classes * kClassStride);
    for (size_t i = 0; i < scratch.size(); i++) {
      scratch[i] = shard->cells_[i].load(std::memory_order_relaxed);
    }
    MergeWords(out, classes, scratch.data());
  }
  if (!spill_.empty()) {
    const size_t classes = spill_.size() / kClassStride;
    MergeWords(out, classes < class_count ? classes : class_count, spill_.data());
  }
}

void Collector::Reset() {
  LockGuard<Spinlock> guard(lock_);
  for (const auto& shard : shards_) {
    const size_t words = shard->class_capacity_ * kClassStride;
    for (size_t i = 0; i < words; i++) {
      shard->cells_[i].store(0, std::memory_order_relaxed);
    }
  }
  std::fill(spill_.begin(), spill_.end(), 0);
}

}  // namespace tesla::profile
