#include "profile/hints.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace tesla::profile {
namespace {

// Smallest power of two ≥ n (for capacity hints; pools like round sizes).
uint32_t RoundUpPow2(uint64_t n) {
  uint32_t p = 1;
  while (p < n && p < (1u << 20)) {
    p <<= 1;
  }
  return p;
}

}  // namespace

PlanHints HintsFromSnapshot(const Snapshot& snapshot) {
  PlanHints hints;
  for (const ClassProfile& cls : snapshot.classes) {
    const uint64_t dispatches = cls.cell(Cell::dispatches);
    const uint64_t peak = cls.cell(Cell::fanout_peak);
    if (dispatches == 0 && peak == 0) {
      continue;  // class never exercised: nothing to learn
    }
    ClassHint hint;
    hint.name = cls.name;
    // Capacity: headroom of 2× the observed peak, floor of 16 so a class
    // that bursts slightly past its profile window doesn't overflow.
    hint.capacity = std::max<uint32_t>(16, RoundUpPow2(peak * 2));

    const uint64_t gated = cls.cell(Cell::small_population);
    const uint64_t partial = cls.cell(Cell::partial_bound);
    // The population gate forced scans on a class that keeps a steady keyed
    // population: turn the probe back on for it. Guard against one-off
    // warm-up scans by requiring the gate to be the dominant fallback cause.
    if (gated > 0 && gated >= partial) {
      hint.min_population = 0;
    }
    // Prefix index: scans dominated by partially-bound dispatches, where one
    // tracked key variable was bound in most of them. Pick the most-bound
    // variable (lowest position wins ties — deterministic).
    if (partial > 0 && partial >= gated) {
      size_t best = kMaxKeyVars;
      uint64_t best_count = 0;
      const size_t tracked = std::min(cls.key_vars.size(), kMaxKeyVars);
      for (size_t p = 0; p < tracked; p++) {
        if (cls.var_partial[p] > best_count) {
          best = p;
          best_count = cls.var_partial[p];
        }
      }
      if (best < kMaxKeyVars) {
        hint.prefix_key_pos = static_cast<int32_t>(best);
      }
    }
    hints.classes.push_back(std::move(hint));
  }
  return hints;
}

std::string HintsToText(const PlanHints& hints) {
  std::string out;
  out.append("# tesla plan hints v1 — emitted from a workload profile.\n");
  out.append("# class <len>:<name> capacity=<n> min_population=<n> prefix_key_pos=<n>\n");
  for (const ClassHint& hint : hints.classes) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "class %zu:", hint.name.size());
    out.append(buf);
    out.append(hint.name);
    std::snprintf(buf, sizeof(buf), " capacity=%" PRIu32 " min_population=%" PRId32
                                    " prefix_key_pos=%" PRId32 "\n",
                  hint.capacity, hint.min_population, hint.prefix_key_pos);
    out.append(buf);
  }
  return out;
}

Result<PlanHints> ParseHints(const std::string& text) {
  PlanHints hints;
  size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    lineno++;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line.compare(0, 6, "class ") != 0) {
      return Error{"plan hints: expected 'class' directive", lineno, 1};
    }
    size_t colon = line.find(':', 6);
    if (colon == std::string::npos) {
      return Error{"plan hints: missing name length prefix", lineno, 1};
    }
    char* end = nullptr;
    const unsigned long name_len = std::strtoul(line.c_str() + 6, &end, 10);
    if (end != line.c_str() + colon || colon + 1 + name_len > line.size()) {
      return Error{"plan hints: bad name length", lineno, 1};
    }
    ClassHint hint;
    hint.name = line.substr(colon + 1, name_len);
    const char* rest = line.c_str() + colon + 1 + name_len;
    long capacity = 0, min_population = -1, prefix = -1;
    if (std::sscanf(rest, " capacity=%ld min_population=%ld prefix_key_pos=%ld",
                    &capacity, &min_population, &prefix) != 3) {
      return Error{"plan hints: malformed fields after class name", lineno, 1};
    }
    if (capacity < 0 || capacity > (1 << 20) ||
        prefix >= static_cast<long>(kMaxKeyVars)) {
      return Error{"plan hints: field out of range", lineno, 1};
    }
    hint.capacity = static_cast<uint32_t>(capacity);
    hint.min_population = static_cast<int32_t>(min_population);
    hint.prefix_key_pos = static_cast<int32_t>(prefix);
    hints.classes.push_back(std::move(hint));
  }
  return hints;
}

Status WriteHintsFile(const std::string& path, const PlanHints& hints) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Error{"cannot open '" + path + "' for writing"};
  }
  const std::string text = HintsToText(hints);
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  if (written != text.size()) {
    return Error{"short write to '" + path + "'"};
  }
  return Status::Ok();
}

Result<PlanHints> ReadHintsFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Error{"cannot open plan-hints file '" + path + "'"};
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    text.append(buf, n);
  }
  std::fclose(file);
  return ParseHints(text);
}

}  // namespace tesla::profile
