// Merged workload-profile view: per-class cells, sketches and pool marks,
// plus every rendering the fleet already expects — JSON, Prometheus
// (tesla_profile_* families), and the operator report (hot-class ranking,
// scan-fallback offenders, capacity headroom).
#ifndef TESLA_PROFILE_SNAPSHOT_H_
#define TESLA_PROFILE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "profile/profile.h"

namespace tesla::profile {

struct ClassProfile {
  std::string name;
  // Key variables the class clones on (ascending variable order), as
  // compiled into the plan; at most kMaxKeyVars are profiled.
  std::vector<uint16_t> key_vars;
  uint64_t cells[kCellCount] = {};
  // Partial-binding attribution: var_partial[p] counts scan fallbacks where
  // key variable p *was* bound (so a prefix index on it would have served).
  uint64_t var_partial[kMaxKeyVars] = {};
  // Linear-counting distinct-value sketches, one per tracked key variable.
  uint64_t sketch[kMaxKeyVars][kSketchWords] = {};

  uint64_t cell(Cell c) const { return cells[static_cast<size_t>(c)]; }
  // Linear-counting estimate of distinct values seen for key variable `p`
  // (-m·ln(V)); kSketchBits when the bitmap saturated.
  double EstimatedDistinct(size_t p) const;
  // Mean live-instance population over the class's dispatches.
  double MeanFanout() const;
};

struct Snapshot {
  // Largest SlotPool high-water mark across the runtime's contexts, and the
  // capacity those pools were built with — the capacity-headroom signal.
  uint64_t pool_high_water = 0;
  uint64_t pool_capacity = 0;
  std::vector<ClassProfile> classes;  // plan order (class id), deterministic
};

// Merges `in` into `inout`: classes are matched by name (union), cells
// combine per the schema's merge rule (sum / max / OR), pool marks combine
// by max. Commutative and associative, so fleet merges are order-independent.
void MergeInto(Snapshot* inout, const Snapshot& in);

std::string ToJson(const Snapshot& snapshot);
// tesla_profile_* Prometheus families (text exposition format 0.0.4).
std::string ToPrometheus(const Snapshot& snapshot);
// The operator report: classes ranked by dispatch volume, scan-fallback
// offenders with the variable a prefix index would serve, capacity headroom.
std::string RenderReport(const Snapshot& snapshot);

}  // namespace tesla::profile

#endif  // TESLA_PROFILE_SNAPSHOT_H_
