#include "instr/bridge.h"

namespace tesla::instr {

RuntimeBridge::RuntimeBridge(const InstrumentedProgram& program, runtime::Runtime& rt,
                             runtime::ThreadContext& ctx)
    : program_(program), rt_(rt), ctx_(ctx) {
  site_automata_.reserve(program_.sites.size());
  for (const cfront::SiteInfo& site : program_.sites) {
    site_automata_.push_back(rt_.FindAutomaton(site.automaton));
  }
}

void RuntimeBridge::OnHook(uint32_t hook_id, std::span<const int64_t> values) {
  if (hook_id >= program_.translators.size()) {
    return;
  }
  // Each generated translator marshals its hook payload into one unified
  // Event record and hands it to the runtime's single entry point.
  const Translator& translator = program_.translators[hook_id];
  switch (translator.kind) {
    case Translator::Kind::kFunctionEntry:
    case Translator::Kind::kCallerPre:
      rt_.OnEvent(ctx_, runtime::Event::Call(translator.function, values));
      break;
    case Translator::Kind::kFunctionExit:
    case Translator::Kind::kCallerPost: {
      // values = arguments... , return value.
      if (values.empty()) {
        return;
      }
      std::span<const int64_t> args = values.subspan(0, values.size() - 1);
      rt_.OnEvent(ctx_, runtime::Event::Return(translator.function, args, values.back()));
      break;
    }
    case Translator::Kind::kFieldStore:
      if (values.size() >= 3) {
        rt_.OnEvent(ctx_, runtime::Event::FieldStore(translator.function, values[0],
                                                     values[1], values[2]));
      }
      break;
    case Translator::Kind::kSite: {
      if (translator.site_index >= program_.sites.size()) {
        return;
      }
      int automaton = site_automata_[translator.site_index];
      if (automaton < 0) {
        return;
      }
      const cfront::SiteInfo& site = program_.sites[translator.site_index];
      runtime::Binding bindings[runtime::kMaxVariables];
      size_t count = 0;
      for (size_t i = 0; i < site.var_indices.size() && i < values.size() &&
                         count < runtime::kMaxVariables;
           i++) {
        bindings[count++] = runtime::Binding{site.var_indices[i], values[i]};
      }
      rt_.OnEvent(ctx_, runtime::Event::Site(static_cast<uint32_t>(automaton),
                                             std::span<const runtime::Binding>(bindings, count)));
      break;
    }
  }
}

Result<PipelineResult> RunInstrumented(const InstrumentedProgram& program,
                                       const std::string& entry, runtime::Runtime& rt) {
  runtime::ThreadContext ctx(rt);
  ir::Interpreter interpreter(program.module);
  RuntimeBridge bridge(program, rt, ctx);
  interpreter.SetDispatcher(&bridge);

  auto result = interpreter.Call(entry);
  if (!result.ok()) {
    return result.error();
  }
  PipelineResult pipeline;
  pipeline.return_value = *result;
  pipeline.stats = rt.stats();
  return pipeline;
}

}  // namespace tesla::instr
