// The TESLA instrumenter (paper §4.2).
//
// Rewrites an ir::Module according to a program-wide manifest: program hooks
// (kHook instructions) are woven into function entry blocks and before
// returns (callee-side), around call sites (caller-side, for functions that
// cannot be recompiled or that the assertion marked caller()), after
// structure field stores (with the field's prior value, so compound
// assignments can match), and in place of `__tesla_inline_assertion` calls.
//
// Each hook names an *event translator* — the per-event matching logic that,
// at run time, converts program events into automata symbols. Translators
// are executed by instr::RuntimeBridge, which forwards to libtesla.
#ifndef TESLA_INSTR_INSTRUMENT_H_
#define TESLA_INSTR_INSTRUMENT_H_

#include <cstdint>
#include <vector>

#include "automata/manifest.h"
#include "cfront/cfront.h"
#include "ir/ir.h"
#include "support/result.h"

namespace tesla::instr {

struct Translator {
  enum class Kind {
    kFunctionEntry,  // values: the callee's parameters
    kFunctionExit,   // values: parameters... , return value
    kCallerPre,      // values: the call's arguments
    kCallerPost,     // values: arguments... , return value
    kFieldStore,     // values: object, old value, new value
    kSite,           // values: automaton variables per SiteInfo
  };
  Kind kind = Kind::kFunctionEntry;
  Symbol function = kNoSymbol;  // function / field symbol
  uint32_t site_index = 0;      // kSite: index into sites
};

struct InstrumentedProgram {
  ir::Module module;
  std::vector<Translator> translators;
  std::vector<cfront::SiteInfo> sites;
  uint64_t hooks_inserted = 0;
};

// Weaves instrumentation for `manifest` into `module`. `sites` describes the
// `__tesla_inline_assertion` markers cfront emitted.
Result<InstrumentedProgram> Instrument(ir::Module module, const automata::Manifest& manifest,
                                       std::vector<cfront::SiteInfo> sites);

}  // namespace tesla::instr

#endif  // TESLA_INSTR_INSTRUMENT_H_
