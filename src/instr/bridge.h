// RuntimeBridge: executes event translators.
//
// The interpreter dispatches every kHook to this bridge, which performs the
// translator's role from paper §4.2: identify the event class, marshal the
// observed values, and call into libtesla (whose per-pattern static checks
// and variable binding complete the translation into automata symbols).
#ifndef TESLA_INSTR_BRIDGE_H_
#define TESLA_INSTR_BRIDGE_H_

#include <vector>

#include "instr/instrument.h"
#include "ir/interp.h"
#include "runtime/runtime.h"

namespace tesla::instr {

class RuntimeBridge : public ir::HookDispatcher {
 public:
  // Resolves site automata by name; `rt` must already have the program's
  // manifest registered.
  RuntimeBridge(const InstrumentedProgram& program, runtime::Runtime& rt,
                runtime::ThreadContext& ctx);

  void OnHook(uint32_t hook_id, std::span<const int64_t> values) override;

 private:
  const InstrumentedProgram& program_;
  runtime::Runtime& rt_;
  runtime::ThreadContext& ctx_;
  std::vector<int> site_automata_;  // per site index: automaton id or -1
};

// Convenience: compile + instrument + run `entry` under a fresh runtime.
// Returns the number of violations observed.
struct PipelineResult {
  int64_t return_value = 0;
  runtime::RuntimeStats stats;
};

Result<PipelineResult> RunInstrumented(const InstrumentedProgram& program,
                                       const std::string& entry, runtime::Runtime& rt);

}  // namespace tesla::instr

#endif  // TESLA_INSTR_BRIDGE_H_
