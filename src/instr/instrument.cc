#include "instr/instrument.h"

#include <map>

namespace tesla::instr {
namespace {

using ir::Instr;
using ir::Opcode;
using ir::Reg;

class Instrumenter {
 public:
  Instrumenter(ir::Module module, const automata::Manifest& manifest,
               std::vector<cfront::SiteInfo> sites)
      : manifest_(manifest) {
    program_.module = std::move(module);
    program_.sites = std::move(sites);
  }

  Result<InstrumentedProgram> Run() {
    requirements_ = manifest_.ComputeRequirements();
    site_fn_ = GlobalInterner().Lookup(cfront::kInlineAssertionFn);

    for (ir::Function& function : program_.module.functions()) {
      InstrumentFunction(function);
    }
    return std::move(program_);
  }

 private:
  // Which side to hook for `fn`: caller when the assertion requested it or
  // when the callee body is unavailable (paper §4.2: "the latter is important
  // when instrumenting calls into a library that cannot be recompiled").
  bool UseCallerSide(Symbol fn) const {
    if (requirements_.caller_side.count(fn) != 0) {
      return true;
    }
    return program_.module.FindFunction(fn) == nullptr;
  }

  uint32_t TranslatorFor(Translator::Kind kind, Symbol symbol, uint32_t site_index = 0) {
    auto key = std::make_tuple(kind, symbol, site_index);
    auto it = translator_index_.find(key);
    if (it != translator_index_.end()) {
      return it->second;
    }
    uint32_t id = static_cast<uint32_t>(program_.translators.size());
    program_.translators.push_back(Translator{kind, symbol, site_index});
    translator_index_.emplace(key, id);
    return id;
  }

  void InstrumentFunction(ir::Function& function) {
    const bool callee_hooked =
        !UseCallerSide(function.name) &&
        (requirements_.call_hooks.count(function.name) != 0 ||
         requirements_.return_hooks.count(function.name) != 0);

    // Callee entry hook: prepended to the entry basic block.
    if (callee_hooked && requirements_.call_hooks.count(function.name) != 0) {
      Instr hook;
      hook.op = Opcode::kHook;
      hook.hook_id = TranslatorFor(Translator::Kind::kFunctionEntry, function.name);
      for (Reg reg = 0; reg < function.param_count; reg++) {
        hook.args.push_back(reg);
      }
      function.blocks[0].instrs.insert(function.blocks[0].instrs.begin(), std::move(hook));
      program_.hooks_inserted++;
    }

    for (ir::Block& block : function.blocks) {
      std::vector<Instr> rewritten;
      rewritten.reserve(block.instrs.size());
      for (Instr& instr : block.instrs) {
        switch (instr.op) {
          case Opcode::kRet: {
            if (callee_hooked && requirements_.return_hooks.count(function.name) != 0) {
              Instr hook;
              hook.op = Opcode::kHook;
              hook.hook_id = TranslatorFor(Translator::Kind::kFunctionExit, function.name);
              for (Reg reg = 0; reg < function.param_count; reg++) {
                hook.args.push_back(reg);
              }
              hook.args.push_back(instr.a != ir::kNoReg ? instr.a : AddZeroReg(function,
                                                                               rewritten));
              rewritten.push_back(std::move(hook));
              program_.hooks_inserted++;
            }
            rewritten.push_back(std::move(instr));
            break;
          }
          case Opcode::kCall: {
            // Assertion-site marker → site translator hook.
            if (instr.fn == site_fn_ && site_fn_ != kNoSymbol) {
              Instr hook;
              hook.op = Opcode::kHook;
              hook.hook_id = TranslatorFor(Translator::Kind::kSite, kNoSymbol,
                                           static_cast<uint32_t>(instr.imm));
              hook.args = instr.args;
              rewritten.push_back(std::move(hook));
              program_.hooks_inserted++;
              break;  // the original pseudo-call is removed (§4.2)
            }
            const bool hook_call =
                UseCallerSide(instr.fn) &&
                (requirements_.call_hooks.count(instr.fn) != 0 ||
                 requirements_.return_hooks.count(instr.fn) != 0);
            if (hook_call && requirements_.call_hooks.count(instr.fn) != 0) {
              Instr pre;
              pre.op = Opcode::kHook;
              pre.hook_id = TranslatorFor(Translator::Kind::kCallerPre, instr.fn);
              pre.args = instr.args;
              rewritten.push_back(std::move(pre));
              program_.hooks_inserted++;
            }
            Symbol callee = instr.fn;
            std::vector<Reg> call_args = instr.args;
            Reg dst = instr.dst;
            rewritten.push_back(std::move(instr));
            if (hook_call && requirements_.return_hooks.count(callee) != 0) {
              Instr post;
              post.op = Opcode::kHook;
              post.hook_id = TranslatorFor(Translator::Kind::kCallerPost, callee);
              post.args = call_args;
              post.args.push_back(dst != ir::kNoReg ? dst : AddZeroReg(function, rewritten));
              rewritten.push_back(std::move(post));
              program_.hooks_inserted++;
            }
            break;
          }
          case Opcode::kStoreField: {
            const ir::StructType& type = program_.module.struct_type(instr.type_id);
            Symbol field = type.fields[instr.field_index].symbol;
            if (requirements_.field_hooks.count(field) != 0) {
              // Load the field's prior value, perform the store, then hand
              // (object, old, new) to the translator (§4.2 "Field
              // assignment").
              Reg old_value = function.reg_count++;
              Instr load;
              load.op = Opcode::kLoadField;
              load.dst = old_value;
              load.a = instr.a;
              load.type_id = instr.type_id;
              load.field_index = instr.field_index;
              rewritten.push_back(std::move(load));

              Reg object = instr.a;
              Reg new_value = instr.b;
              rewritten.push_back(std::move(instr));

              Instr hook;
              hook.op = Opcode::kHook;
              hook.hook_id = TranslatorFor(Translator::Kind::kFieldStore, field);
              hook.args = {object, old_value, new_value};
              rewritten.push_back(std::move(hook));
              program_.hooks_inserted++;
            } else {
              rewritten.push_back(std::move(instr));
            }
            break;
          }
          default:
            rewritten.push_back(std::move(instr));
            break;
        }
      }
      block.instrs = std::move(rewritten);
    }
  }

  // Materialises a zero register for void-return hook payloads.
  Reg AddZeroReg(ir::Function& function, std::vector<Instr>& out) {
    Reg reg = function.reg_count++;
    Instr zero;
    zero.op = Opcode::kConst;
    zero.dst = reg;
    zero.imm = 0;
    out.push_back(std::move(zero));
    return reg;
  }

  const automata::Manifest& manifest_;
  automata::InstrumentationRequirements requirements_;
  InstrumentedProgram program_;
  Symbol site_fn_ = kNoSymbol;
  std::map<std::tuple<Translator::Kind, Symbol, uint32_t>, uint32_t> translator_index_;
};

}  // namespace

Result<InstrumentedProgram> Instrument(ir::Module module, const automata::Manifest& manifest,
                                       std::vector<cfront::SiteInfo> sites) {
  Instrumenter instrumenter(std::move(module), manifest, std::move(sites));
  return instrumenter.Run();
}

}  // namespace tesla::instr
