#include "ir/stepemit.h"

namespace tesla::ir {

namespace {

// Frame layout: r0 = state, r1 = symbol (params), r2 = constant scratch,
// r3 = compare scratch.
constexpr Reg kState = 0;
constexpr Reg kSymbol = 1;
constexpr Reg kImm = 2;
constexpr Reg kCmp = 3;

Instr Const(int64_t imm) {
  Instr instr;
  instr.op = Opcode::kConst;
  instr.dst = kImm;
  instr.imm = imm;
  return instr;
}

Instr Eq(Reg a) {
  Instr instr;
  instr.op = Opcode::kBin;
  instr.bin = BinOp::kEq;
  instr.dst = kCmp;
  instr.a = a;
  instr.b = kImm;
  return instr;
}

Instr CondBr(uint32_t then_block, uint32_t else_block) {
  Instr instr;
  instr.op = Opcode::kCondBr;
  instr.a = kCmp;
  instr.then_block = then_block;
  instr.else_block = else_block;
  return instr;
}

Instr Ret() {
  Instr instr;
  instr.op = Opcode::kRet;
  instr.a = kImm;
  return instr;
}

}  // namespace

Function* EmitStepFunction(Module& module, const automata::StepLowering& lowering,
                           const std::string& name) {
  const auto& live = lowering.live_symbols;
  const size_t tests = live.size();

  // Block layout: one symbol-test block per live symbol (entry is the first
  // test), then the shared miss block, then each symbol's edge chain — one
  // compare block and one return block per DFA edge. Dead symbols have no
  // test block at all: they fall off the chain into the miss return, the
  // same pruning the bytecode tier applies via a zero entry offset.
  const uint32_t miss = static_cast<uint32_t>(tests == 0 ? 1 : tests);
  std::vector<uint32_t> body_first(tests);
  uint32_t next = miss + 1;
  for (size_t i = 0; i < tests; i++) {
    body_first[i] = next;
    next += 2 * static_cast<uint32_t>(lowering.symbol_edges[live[i]].size());
  }

  Function fn;
  fn.name = InternString(name);
  fn.param_count = 2;
  fn.reg_count = 4;
  fn.blocks.resize(next);

  if (tests == 0) {
    // No transitions at all: the entry *is* the miss return (block 0), with
    // the reserved miss block as an unreachable duplicate to keep the layout
    // uniform.
    fn.blocks[0].instrs = {Const(kStepMiss), Ret()};
  }
  for (size_t i = 0; i < tests; i++) {
    Block& test = fn.blocks[i];
    const uint32_t next_test = i + 1 < tests ? static_cast<uint32_t>(i + 1) : miss;
    test.instrs = {Const(live[i]), Eq(kSymbol), CondBr(body_first[i], next_test)};

    const auto& edges = lowering.symbol_edges[live[i]];
    for (size_t e = 0; e < edges.size(); e++) {
      const uint32_t check = body_first[i] + 2 * static_cast<uint32_t>(e);
      const uint32_t hit = check + 1;
      const uint32_t on_miss = e + 1 < edges.size() ? check + 2 : miss;
      fn.blocks[check].instrs = {Const(edges[e].from), Eq(kState), CondBr(hit, on_miss)};
      fn.blocks[hit].instrs = {Const(edges[e].to), Ret()};
    }
  }
  fn.blocks[miss].instrs = {Const(kStepMiss), Ret()};

  return module.AddFunction(std::move(fn));
}

}  // namespace tesla::ir
