#include "ir/interp.h"

namespace tesla::ir {

Result<int64_t> Interpreter::Call(const std::string& name, std::vector<int64_t> args) {
  return Call(InternString(name), std::move(args));
}

Result<int64_t> Interpreter::Call(Symbol name, std::vector<int64_t> args) {
  const Function* function = module_.FindFunction(name);
  if (function == nullptr) {
    auto host = hosts_.find(name);
    if (host != hosts_.end()) {
      return host->second(std::span<const int64_t>(args.data(), args.size()));
    }
    return Error{"undefined function '" + SymbolName(name) + "'"};
  }
  if (args.size() < function->param_count) {
    return Error{"too few arguments to '" + SymbolName(name) + "'"};
  }
  if (call_depth_ > 512) {
    return Error{"call stack overflow"};
  }
  std::vector<int64_t> regs(function->reg_count, 0);
  for (uint32_t i = 0; i < function->param_count; i++) {
    regs[i] = args[i];
  }
  call_depth_++;
  auto result = Execute(*function, std::move(regs));
  call_depth_--;
  return result;
}

Result<int64_t> Interpreter::Execute(const Function& function, std::vector<int64_t> regs) {
  size_t block = 0;
  size_t ip = 0;
  std::vector<int64_t> call_args;

  while (true) {
    if (++steps_ > step_limit_) {
      return Error{"step limit exceeded in '" + SymbolName(function.name) + "'"};
    }
    const Instr& instr = function.blocks[block].instrs[ip];
    switch (instr.op) {
      case Opcode::kConst:
        regs[instr.dst] = instr.imm;
        break;
      case Opcode::kMove:
        regs[instr.dst] = regs[instr.a];
        break;
      case Opcode::kBin: {
        int64_t a = regs[instr.a];
        int64_t b = regs[instr.b];
        int64_t value = 0;
        switch (instr.bin) {
          case BinOp::kAdd: value = a + b; break;
          case BinOp::kSub: value = a - b; break;
          case BinOp::kMul: value = a * b; break;
          case BinOp::kDiv:
            if (b == 0) return Error{"division by zero"};
            value = a / b;
            break;
          case BinOp::kMod:
            if (b == 0) return Error{"modulo by zero"};
            value = a % b;
            break;
          case BinOp::kAnd: value = a & b; break;
          case BinOp::kOr: value = a | b; break;
          case BinOp::kXor: value = a ^ b; break;
          case BinOp::kShl: value = a << (b & 63); break;
          case BinOp::kShr: value = static_cast<int64_t>(static_cast<uint64_t>(a) >> (b & 63));
            break;
          case BinOp::kEq: value = a == b; break;
          case BinOp::kNe: value = a != b; break;
          case BinOp::kLt: value = a < b; break;
          case BinOp::kLe: value = a <= b; break;
          case BinOp::kGt: value = a > b; break;
          case BinOp::kGe: value = a >= b; break;
        }
        regs[instr.dst] = value;
        break;
      }
      case Opcode::kCall:
      case Opcode::kCallIndirect: {
        call_args.clear();
        for (Reg arg : instr.args) {
          call_args.push_back(regs[arg]);
        }
        Symbol callee = instr.op == Opcode::kCall
                            ? instr.fn
                            : static_cast<Symbol>(regs[instr.a]);
        auto result = Call(callee, call_args);
        if (!result.ok()) {
          return result;
        }
        if (instr.dst != kNoReg) {
          regs[instr.dst] = *result;
        }
        break;
      }
      case Opcode::kFnAddr:
        regs[instr.dst] = static_cast<int64_t>(instr.fn);
        break;
      case Opcode::kAlloc: {
        const StructType& type = module_.struct_type(instr.type_id);
        int64_t address = static_cast<int64_t>(heap_.size());
        heap_.resize(heap_.size() + (type.fields.empty() ? 1 : type.fields.size()), 0);
        regs[instr.dst] = address;
        break;
      }
      case Opcode::kLoadField: {
        int64_t address = regs[instr.a] + instr.field_index;
        if (address < 0 || static_cast<size_t>(address) >= heap_.size()) {
          return Error{"field load out of bounds"};
        }
        regs[instr.dst] = heap_[static_cast<size_t>(address)];
        break;
      }
      case Opcode::kStoreField: {
        int64_t address = regs[instr.a] + instr.field_index;
        if (address < 0 || static_cast<size_t>(address) >= heap_.size()) {
          return Error{"field store out of bounds"};
        }
        heap_[static_cast<size_t>(address)] = regs[instr.b];
        break;
      }
      case Opcode::kLoad: {
        int64_t address = regs[instr.a];
        if (address < 0 || static_cast<size_t>(address) >= heap_.size()) {
          return Error{"load out of bounds"};
        }
        regs[instr.dst] = heap_[static_cast<size_t>(address)];
        break;
      }
      case Opcode::kStore: {
        int64_t address = regs[instr.a];
        if (address < 0 || static_cast<size_t>(address) >= heap_.size()) {
          return Error{"store out of bounds"};
        }
        heap_[static_cast<size_t>(address)] = regs[instr.b];
        break;
      }
      case Opcode::kRet:
        return instr.a == kNoReg ? int64_t{0} : regs[instr.a];
      case Opcode::kBr:
        block = instr.then_block;
        ip = 0;
        continue;
      case Opcode::kCondBr:
        block = regs[instr.a] != 0 ? instr.then_block : instr.else_block;
        ip = 0;
        continue;
      case Opcode::kHook: {
        if (dispatcher_ != nullptr) {
          call_args.clear();
          for (Reg arg : instr.args) {
            call_args.push_back(regs[arg]);
          }
          dispatcher_->OnHook(instr.hook_id,
                              std::span<const int64_t>(call_args.data(), call_args.size()));
        }
        break;
      }
    }
    ip++;
  }
}

}  // namespace tesla::ir
