// Step-kernel emission: renders a lowered step function (automata/stepc.h)
// as a tesla::ir function, the IR-level twin of the runtime's compiled
// stepping tiers (runtime/step.h).
//
// The emitted function has the shape
//
//     fn <name>(state, symbol) -> target        // -1: no transition
//
// over the class's DFA: a branch chain over the live symbols (dead symbols
// fall straight through to the miss return), then per symbol either a
// compare chain over its edges (few edges — the same single-transition
// collapse the threaded bytecode tier applies) or the full row as nested
// compares. Running it under ir::Interpreter must agree with Dfa::Step on
// every (state, symbol) pair — the differential tests drive exactly that,
// which pins the runtime's table lowering to an executable, inspectable
// specification.
#ifndef TESLA_IR_STEPEMIT_H_
#define TESLA_IR_STEPEMIT_H_

#include <string>

#include "automata/stepc.h"
#include "ir/ir.h"

namespace tesla::ir {

// The miss return value (no transition from (state, symbol)).
inline constexpr int64_t kStepMiss = -1;

// Emits the step function for `lowering` into `module` under `name`;
// returns the function. The module stays Verify()-clean.
Function* EmitStepFunction(Module& module, const automata::StepLowering& lowering,
                           const std::string& name);

}  // namespace tesla::ir

#endif  // TESLA_IR_STEPEMIT_H_
