// The mini-IR interpreter.
//
// Executes ir::Modules with a slot-based heap, host-function binding (so
// programs can reach native helpers), an instrumentation dispatcher for kHook
// instructions, and call-stack visibility for incallstack() queries.
#ifndef TESLA_IR_INTERP_H_
#define TESLA_IR_INTERP_H_

#include <functional>
#include <span>
#include <vector>

#include "ir/ir.h"

namespace tesla::ir {

// Receives kHook dispatches; implemented by the instrumentation bridge
// (instr/bridge.h) which forwards to libtesla.
class HookDispatcher {
 public:
  virtual ~HookDispatcher() = default;
  virtual void OnHook(uint32_t hook_id, std::span<const int64_t> values) = 0;
};

using HostFunction = std::function<int64_t(std::span<const int64_t>)>;

class Interpreter {
 public:
  explicit Interpreter(const Module& module) : module_(module) { heap_.resize(8, 0); }

  void BindHost(const std::string& name, HostFunction fn) {
    hosts_[InternString(name)] = std::move(fn);
  }
  void SetDispatcher(HookDispatcher* dispatcher) { dispatcher_ = dispatcher; }
  void SetStepLimit(uint64_t limit) { step_limit_ = limit; }

  // Calls `name` with `args`; returns its result.
  Result<int64_t> Call(const std::string& name, std::vector<int64_t> args = {});
  Result<int64_t> Call(Symbol name, std::vector<int64_t> args);

  // Heap access (also used as libtesla's MemoryReader for &x patterns).
  bool ReadSlot(int64_t address, int64_t* value) const {
    if (address < 0 || static_cast<size_t>(address) >= heap_.size()) {
      return false;
    }
    *value = heap_[static_cast<size_t>(address)];
    return true;
  }

  uint64_t steps_executed() const { return steps_; }

 private:
  Result<int64_t> Execute(const Function& function, std::vector<int64_t> regs);

  const Module& module_;
  std::vector<int64_t> heap_;
  std::unordered_map<Symbol, HostFunction> hosts_;
  HookDispatcher* dispatcher_ = nullptr;
  uint64_t step_limit_ = 100'000'000;
  uint64_t steps_ = 0;
  int call_depth_ = 0;
};

}  // namespace tesla::ir

#endif  // TESLA_IR_INTERP_H_
