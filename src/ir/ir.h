// tesla::ir — a register-based mini-IR.
//
// Stands in for LLVM IR in the TESLA pipeline (paper §4.2): language
// front-ends (cfront) emit it, the instrumenter rewrites it (inserting hook
// instructions at function entries/exits, around call sites, after structure
// field stores and at assertion sites), and the interpreter executes it.
//
// Registers are per-frame and mutable (front-ends need not construct SSA);
// all values are 64-bit integers, with heap addresses represented as slot
// indices into the interpreter's heap.
#ifndef TESLA_IR_IR_H_
#define TESLA_IR_IR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/intern.h"
#include "support/result.h"

namespace tesla::ir {

using Reg = uint32_t;
inline constexpr Reg kNoReg = UINT32_MAX;

enum class Opcode : uint8_t {
  kConst,         // dst = imm
  kMove,          // dst = a
  kBin,           // dst = a <bin> b
  kCall,          // dst = fn(args...)           (direct; fn may be host)
  kCallIndirect,  // dst = (*a)(args...)         (a holds a function symbol)
  kFnAddr,        // dst = symbol-of fn
  kAlloc,         // dst = new <type_id>         (heap object)
  kLoadField,     // dst = [a].field<field_index of type_id>
  kStoreField,    // [a].field<field_index> = b
  kLoad,          // dst = *[a]                  (raw slot load)
  kStore,         // *[a] = b
  kRet,           // return a (or void if a == kNoReg)
  kBr,            // jump then_block
  kCondBr,        // if a jump then_block else else_block
  kHook,          // instrumentation: dispatch (hook_id, args...) to the runtime
};

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

struct Instr {
  Opcode op = Opcode::kConst;
  BinOp bin = BinOp::kAdd;
  Reg dst = kNoReg;
  Reg a = kNoReg;
  Reg b = kNoReg;
  int64_t imm = 0;
  Symbol fn = kNoSymbol;      // kCall / kFnAddr
  uint32_t type_id = 0;       // kAlloc / kLoadField / kStoreField
  uint32_t field_index = 0;   // kLoadField / kStoreField
  uint32_t hook_id = 0;       // kHook
  uint32_t then_block = 0;    // kBr / kCondBr
  uint32_t else_block = 0;    // kCondBr
  std::vector<Reg> args;      // kCall / kCallIndirect / kHook
};

struct Block {
  std::vector<Instr> instrs;
};

struct Function {
  Symbol name = kNoSymbol;
  uint32_t param_count = 0;  // params arrive in registers 0..param_count-1
  uint32_t reg_count = 0;
  std::vector<Block> blocks;  // entry is block 0
};

struct StructField {
  std::string name;
  Symbol symbol = kNoSymbol;  // interned field name (instrumentation key)
};

struct StructType {
  std::string name;
  std::vector<StructField> fields;

  int FieldIndex(const std::string& field_name) const {
    for (size_t i = 0; i < fields.size(); i++) {
      if (fields[i].name == field_name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

class Module {
 public:
  // Returns the function or nullptr.
  Function* FindFunction(Symbol name);
  const Function* FindFunction(Symbol name) const;

  Function* AddFunction(Function function);
  uint32_t AddStruct(StructType type);

  const StructType& struct_type(uint32_t id) const { return structs_[id]; }
  int FindStruct(const std::string& name) const;
  size_t struct_count() const { return structs_.size(); }

  std::vector<Function>& functions() { return functions_; }
  const std::vector<Function>& functions() const { return functions_; }

  // Total instruction count (diagnostics, buildsim work accounting).
  size_t InstructionCount() const;

 private:
  std::vector<Function> functions_;
  std::unordered_map<Symbol, size_t> function_index_;
  std::vector<StructType> structs_;
};

// Structural validity check: register bounds, block targets, field indices,
// block termination. Call-target existence is checked at execution time
// (hosts may provide externals).
Status Verify(const Module& module);

const char* OpcodeName(Opcode op);
std::string ToString(const Module& module);

}  // namespace tesla::ir

#endif  // TESLA_IR_IR_H_
