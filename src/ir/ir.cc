#include "ir/ir.h"

#include <sstream>

namespace tesla::ir {

Function* Module::FindFunction(Symbol name) {
  auto it = function_index_.find(name);
  return it == function_index_.end() ? nullptr : &functions_[it->second];
}

const Function* Module::FindFunction(Symbol name) const {
  auto it = function_index_.find(name);
  return it == function_index_.end() ? nullptr : &functions_[it->second];
}

Function* Module::AddFunction(Function function) {
  function_index_[function.name] = functions_.size();
  functions_.push_back(std::move(function));
  return &functions_.back();
}

uint32_t Module::AddStruct(StructType type) {
  structs_.push_back(std::move(type));
  return static_cast<uint32_t>(structs_.size() - 1);
}

int Module::FindStruct(const std::string& name) const {
  for (size_t i = 0; i < structs_.size(); i++) {
    if (structs_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t Module::InstructionCount() const {
  size_t count = 0;
  for (const Function& function : functions_) {
    for (const Block& block : function.blocks) {
      count += block.instrs.size();
    }
  }
  return count;
}

namespace {

bool IsTerminator(Opcode op) {
  return op == Opcode::kRet || op == Opcode::kBr || op == Opcode::kCondBr;
}

Status VerifyFunction(const Module& module, const Function& function) {
  auto fail = [&](const std::string& message) {
    return Error{"function '" + SymbolName(function.name) + "': " + message};
  };
  if (function.blocks.empty()) {
    return fail("no blocks");
  }
  if (function.param_count > function.reg_count) {
    return fail("more parameters than registers");
  }
  for (size_t block_index = 0; block_index < function.blocks.size(); block_index++) {
    const Block& block = function.blocks[block_index];
    if (block.instrs.empty() || !IsTerminator(block.instrs.back().op)) {
      return fail("block " + std::to_string(block_index) + " is not terminated");
    }
    for (size_t i = 0; i < block.instrs.size(); i++) {
      const Instr& instr = block.instrs[i];
      if (IsTerminator(instr.op) && i + 1 != block.instrs.size()) {
        return fail("terminator mid-block in block " + std::to_string(block_index));
      }
      auto check_reg = [&](Reg reg) { return reg == kNoReg || reg < function.reg_count; };
      if (!check_reg(instr.dst) || !check_reg(instr.a) || !check_reg(instr.b)) {
        return fail("register out of range in block " + std::to_string(block_index));
      }
      for (Reg arg : instr.args) {
        if (!check_reg(arg) || arg == kNoReg) {
          return fail("argument register out of range");
        }
      }
      if (instr.op == Opcode::kBr || instr.op == Opcode::kCondBr) {
        if (instr.then_block >= function.blocks.size() ||
            (instr.op == Opcode::kCondBr && instr.else_block >= function.blocks.size())) {
          return fail("branch target out of range");
        }
      }
      if (instr.op == Opcode::kAlloc || instr.op == Opcode::kLoadField ||
          instr.op == Opcode::kStoreField) {
        if (instr.type_id >= module.struct_count()) {
          return fail("struct type out of range");
        }
        if (instr.op != Opcode::kAlloc &&
            instr.field_index >= module.struct_type(instr.type_id).fields.size()) {
          return fail("field index out of range");
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status Verify(const Module& module) {
  for (const Function& function : module.functions()) {
    if (auto status = VerifyFunction(module, function); !status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kMove: return "move";
    case Opcode::kBin: return "bin";
    case Opcode::kCall: return "call";
    case Opcode::kCallIndirect: return "calli";
    case Opcode::kFnAddr: return "fnaddr";
    case Opcode::kAlloc: return "alloc";
    case Opcode::kLoadField: return "ldfld";
    case Opcode::kStoreField: return "stfld";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kRet: return "ret";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kHook: return "hook";
  }
  return "?";
}

std::string ToString(const Module& module) {
  std::ostringstream out;
  for (const Function& function : module.functions()) {
    out << "fn " << SymbolName(function.name) << "(" << function.param_count << " params, "
        << function.reg_count << " regs)\n";
    for (size_t b = 0; b < function.blocks.size(); b++) {
      out << " block" << b << ":\n";
      for (const Instr& instr : function.blocks[b].instrs) {
        out << "  " << OpcodeName(instr.op);
        if (instr.dst != kNoReg) out << " r" << instr.dst;
        if (instr.a != kNoReg) out << " r" << instr.a;
        if (instr.b != kNoReg) out << " r" << instr.b;
        if (instr.op == Opcode::kConst) out << " #" << instr.imm;
        if (instr.fn != kNoSymbol) out << " @" << SymbolName(instr.fn);
        if (instr.op == Opcode::kHook) out << " hook#" << instr.hook_id;
        if (instr.op == Opcode::kBr || instr.op == Opcode::kCondBr) {
          out << " ->" << instr.then_block;
          if (instr.op == Opcode::kCondBr) out << "/" << instr.else_block;
        }
        for (Reg arg : instr.args) out << " r" << arg;
        out << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace tesla::ir
