#include <gtest/gtest.h>

#include <string>

#include "support/hash.h"
#include "support/intern.h"
#include "support/pool.h"
#include "support/result.h"
#include "support/spinlock.h"
#include "support/strings.h"

namespace tesla {
namespace {

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> bad = Error{"boom", 3, 7};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().ToString(), "3:7: boom");

  Status status;
  EXPECT_TRUE(status.ok());
  Status failed = Error{"nope"};
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().message, "nope");
}

TEST(Intern, DeduplicatesAndRoundTrips) {
  StringInterner interner;
  Symbol a = interner.Intern("alpha");
  Symbol b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.Spelling(a), "alpha");
  EXPECT_EQ(interner.Lookup("beta"), b);
  EXPECT_EQ(interner.Lookup("missing"), kNoSymbol);
  EXPECT_EQ(interner.Spelling(kNoSymbol), "");
}

TEST(Intern, GlobalInternerIsStable) {
  Symbol first = InternString("global_test_symbol");
  Symbol second = InternString("global_test_symbol");
  EXPECT_EQ(first, second);
  EXPECT_EQ(SymbolName(first), "global_test_symbol");
}

TEST(Hash, FnvMatchesKnownVector) {
  // FNV-1a 64-bit of "a" is a published test vector.
  EXPECT_EQ(FnvHashString("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(FnvHashString("ab"), FnvHashString("ba"));
  EXPECT_NE(HashU64(1), HashU64(2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Pool, AllocateFreeAndOverflow) {
  FixedPool<std::string> pool(2);
  std::string* a = pool.Allocate("one");
  std::string* b = pool.Allocate("two");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(pool.Allocate("three"), nullptr);
  EXPECT_EQ(pool.overflows(), 1u);

  pool.Free(a);
  std::string* c = pool.Allocate("again");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(*c, "again");
  EXPECT_EQ(pool.high_water(), 2u);
  pool.Free(b);
  pool.Free(c);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(Spinlock, MutualExclusion) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  {
    LockGuard<Spinlock> guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Strings, SplitTrimJoin) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");

  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_TRUE(StartsWith("tesla-manifest 1", "tesla-"));
  EXPECT_FALSE(StartsWith("a", "ab"));
  EXPECT_EQ(JoinStrings({"a", "b"}, ", "), "a, b");
}

TEST(Strings, ParseInt64Cases) {
  int64_t value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64("-7", &value));
  EXPECT_EQ(value, -7);
  EXPECT_TRUE(ParseInt64("0x1f", &value));
  EXPECT_EQ(value, 31);
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("12x", &value));
}

}  // namespace
}  // namespace tesla
