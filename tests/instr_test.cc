#include <gtest/gtest.h>

#include "buildsim/buildsim.h"
#include "cfront/cfront.h"
#include "instr/bridge.h"
#include "instr/instrument.h"
#include "ir/interp.h"
#include "runtime/runtime.h"

namespace tesla::instr {
namespace {

runtime::RuntimeOptions TestRuntimeOptions() {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  return options;
}

struct Pipeline {
  explicit Pipeline(const std::string& source) {
    cfront::Compiler compiler;
    auto status = compiler.AddUnit(source, "test.c");
    EXPECT_TRUE(status.ok()) << status.error().ToString();
    manifest = compiler.manifest();
    auto instrumented = Instrument(std::move(compiler.module()), manifest,
                                   std::vector<cfront::SiteInfo>(compiler.sites()));
    EXPECT_TRUE(instrumented.ok()) << instrumented.error().ToString();
    program = std::move(instrumented.value());
    auto verify = ir::Verify(program.module);
    EXPECT_TRUE(verify.ok()) << verify.error().ToString();
  }

  // Runs `entry` with instrumentation live; returns runtime stats.
  runtime::RuntimeStats Run(const std::string& entry, std::vector<int64_t> args = {}) {
    runtime::Runtime rt(TestRuntimeOptions());
    EXPECT_TRUE(rt.Register(manifest).ok());
    runtime::ThreadContext ctx(rt);
    ir::Interpreter interp(program.module);
    RuntimeBridge bridge(program, rt, ctx);
    interp.SetDispatcher(&bridge);
    auto result = interp.Call(entry, std::move(args));
    EXPECT_TRUE(result.ok()) << result.error().ToString();
    return rt.stats();
  }

  automata::Manifest manifest;
  InstrumentedProgram program;
};

// The paper's fig. 1 shape, end-to-end through the full compiler pipeline.
TEST(EndToEnd, PreviouslySatisfiedAndViolated) {
  const char* source =
      "int security_check(int o, int op) { return 0; }\n"
      "int do_work(int o, int op, int skip_check) {\n"
      "  if (!skip_check) { int r = security_check(o, op); r = r; }\n"
      "  TESLA_WITHIN(do_work, previously(security_check(o, op) == 0));\n"
      "  return 1;\n"
      "}";
  Pipeline pipeline(source);
  EXPECT_GT(pipeline.program.hooks_inserted, 0u);

  // Check performed: no violation.
  auto good = pipeline.Run("do_work", {7, 2, 0});
  EXPECT_EQ(good.violations, 0u);
  EXPECT_GT(good.transitions, 0u);

  // Check skipped: the assertion site fires a violation.
  auto bad = pipeline.Run("do_work", {7, 2, 1});
  EXPECT_EQ(bad.violations, 1u);
}

TEST(EndToEnd, SiteBindingDistinguishesValues) {
  const char* source =
      "int check(int x) { return 0; }\n"
      "int f(int checked, int asserted) {\n"
      "  int r = check(checked); r = r;\n"
      "  int o = asserted;\n"
      "  TESLA_WITHIN(f, previously(check(o) == 0));\n"
      "  return 0;\n"
      "}";
  Pipeline pipeline(source);
  EXPECT_EQ(pipeline.Run("f", {5, 5}).violations, 0u);
  EXPECT_EQ(pipeline.Run("f", {5, 6}).violations, 1u);  // the paper's vp3 case
}

TEST(EndToEnd, EventuallyThroughPipeline) {
  const char* source =
      "int audit(int x) { return 0; }\n"
      "int f(int x, int do_audit) {\n"
      "  TESLA_WITHIN(f, eventually(audit(x) == 0));\n"
      "  if (do_audit) { int r = audit(x); r = r; }\n"
      "  return 0;\n"
      "}";
  Pipeline pipeline(source);
  EXPECT_EQ(pipeline.Run("f", {3, 1}).violations, 0u);
  EXPECT_EQ(pipeline.Run("f", {3, 0}).violations, 1u);
}

TEST(EndToEnd, FieldAssignmentThroughPipeline) {
  const char* source =
      "struct sock { int state; };\n"
      "int f(int value) {\n"
      "  struct sock *s = alloc(sock);\n"
      "  s->state = value;\n"
      "  TESLA_WITHIN(f, previously(s.state = 3));\n"
      "  return 0;\n"
      "}";
  Pipeline pipeline(source);
  EXPECT_EQ(pipeline.Run("f", {3}).violations, 0u);
  EXPECT_EQ(pipeline.Run("f", {4}).violations, 1u);
}

TEST(EndToEnd, CompoundFieldAssignmentThroughPipeline) {
  const char* source =
      "struct counter { int n; };\n"
      "int f(int bump) {\n"
      "  struct counter *c = alloc(counter);\n"
      "  c->n = 10;\n"
      "  if (bump) { c->n++; } else { c->n += 5; }\n"
      "  TESLA_WITHIN(f, previously(c.n++))\n;"
      "  return 0;\n"
      "}";
  Pipeline pipeline(source);
  EXPECT_EQ(pipeline.Run("f", {1}).violations, 0u);
  EXPECT_EQ(pipeline.Run("f", {0}).violations, 1u);
}

TEST(EndToEnd, CrossUnitAssertion) {
  // §5.1's shape: the assertion lives in the client unit and references a
  // function defined in the library unit.
  cfront::Compiler compiler;
  ASSERT_TRUE(compiler
                  .AddUnit("int EVP_VerifyFinal(int sig) { if (sig == 13) { return -1; } "
                           "return 1; }",
                           "crypto.c")
                  .ok());
  ASSERT_TRUE(compiler
                  .AddUnit("int fetch(int sig) {\n"
                           "  int v = EVP_VerifyFinal(sig); v = v;\n"
                           "  TESLA_WITHIN(fetch, previously(EVP_VerifyFinal(ANY(int)) == 1));\n"
                           "  return 0;\n"
                           "}",
                           "fetch.c")
                  .ok());
  auto instrumented = Instrument(std::move(compiler.module()), compiler.manifest(),
                                 std::vector<cfront::SiteInfo>(compiler.sites()));
  ASSERT_TRUE(instrumented.ok()) << instrumented.error().ToString();

  runtime::Runtime rt(TestRuntimeOptions());
  ASSERT_TRUE(rt.Register(compiler.manifest()).ok());
  auto good = RunInstrumented(*instrumented, "fetch", rt);
  // First call: honest signature (1) — no violation.
  {
    runtime::ThreadContext ctx(rt);
    ir::Interpreter interp(instrumented->module);
    RuntimeBridge bridge(*instrumented, rt, ctx);
    interp.SetDispatcher(&bridge);
    ASSERT_TRUE(interp.Call("fetch", {7}).ok());
    EXPECT_EQ(rt.stats().violations, 0u);
    // Second call: the forged signature (13 → −1) — violation.
    ASSERT_TRUE(interp.Call("fetch", {13}).ok());
    EXPECT_EQ(rt.stats().violations, 1u);
  }
  (void)good;
}

TEST(Instrumenter, HooksOnlyWhatTheManifestNeeds) {
  const char* source =
      "int hooked(int x) { return 0; }\n"
      "int unhooked(int x) { return x; }\n"
      "int f(int x) {\n"
      "  int a = unhooked(x); a = a;\n"
      "  int b = hooked(x); b = b;\n"
      "  TESLA_WITHIN(f, previously(hooked(x) == 0));\n"
      "  return 0;\n"
      "}";
  Pipeline pipeline(source);
  // Hooks: f entry+exit (bound), hooked entry/exit (callee side), 1 site.
  // `unhooked` must not be instrumented.
  uint64_t hook_count = 0;
  bool unhooked_instrumented = false;
  Symbol unhooked = GlobalInterner().Lookup("unhooked");
  for (const auto& function : pipeline.program.module.functions()) {
    for (const auto& block : function.blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.op == ir::Opcode::kHook) {
          hook_count++;
          if (function.name == unhooked) {
            unhooked_instrumented = true;
          }
        }
      }
    }
  }
  EXPECT_EQ(hook_count, pipeline.program.hooks_inserted);
  EXPECT_FALSE(unhooked_instrumented);
}

TEST(Instrumenter, CallerSideForExternalFunctions) {
  // `external` has no body in the module: instrumentation must fall back to
  // caller-side hooks around the call site (§4.2).
  cfront::Compiler compiler;
  ASSERT_TRUE(compiler
                  .AddUnit("int f(int x) {\n"
                           "  int r = external(x); r = r;\n"
                           "  TESLA_WITHIN(f, previously(external(x) == 0));\n"
                           "  return 0;\n"
                           "}",
                           "f.c")
                  .ok());
  auto instrumented = Instrument(std::move(compiler.module()), compiler.manifest(),
                                 std::vector<cfront::SiteInfo>(compiler.sites()));
  ASSERT_TRUE(instrumented.ok());

  bool has_caller_post = false;
  for (const Translator& translator : instrumented->translators) {
    if (translator.kind == Translator::Kind::kCallerPost) {
      has_caller_post = true;
    }
  }
  EXPECT_TRUE(has_caller_post);

  runtime::Runtime rt(TestRuntimeOptions());
  ASSERT_TRUE(rt.Register(compiler.manifest()).ok());
  runtime::ThreadContext ctx(rt);
  ir::Interpreter interp(instrumented->module);
  RuntimeBridge bridge(*instrumented, rt, ctx);
  interp.SetDispatcher(&bridge);
  interp.BindHost("external", [](std::span<const int64_t>) { return 0; });
  ASSERT_TRUE(interp.Call("f", {4}).ok());
  EXPECT_EQ(rt.stats().violations, 0u);
}

TEST(Buildsim, CorpusCompilesAndMeasures) {
  buildsim::CorpusOptions corpus_options;
  corpus_options.units = 6;
  corpus_options.functions_per_unit = 4;
  buildsim::Corpus corpus = buildsim::GenerateCorpus(corpus_options);
  ASSERT_EQ(corpus.unit_sources.size(), 6u);

  buildsim::BuildOptions build_options;
  // Incremental rebuilds are microseconds; the minimum over several repeats
  // keeps one scheduler blip (e.g. a parallel ctest run) from inverting the
  // slowdown ratios below.
  build_options.incremental_repeats = 8;
  auto times = buildsim::MeasureBuild(corpus, build_options);
  ASSERT_TRUE(times.ok()) << times.error().ToString();
  EXPECT_GT(times->clean_default_s, 0.0);
  // The TESLA workflow costs more than the default build, and incremental
  // TESLA rebuilds re-instrument everything (fig. 10's shape).
  EXPECT_GT(times->clean_tesla_s, times->clean_default_s);
  EXPECT_GT(times->IncrementalSlowdown(), times->CleanSlowdown());
  EXPECT_GT(times->instrumented_hooks, 0u);
}

TEST(Buildsim, SmartIncrementalIsCheaper) {
  buildsim::CorpusOptions corpus_options;
  corpus_options.units = 8;
  corpus_options.functions_per_unit = 4;
  // One assertion only: a dense corpus legitimately defeats the smart mode
  // (almost every unit defines a hooked function).
  corpus_options.assertion_every = corpus_options.units * 2;
  buildsim::Corpus corpus = buildsim::GenerateCorpus(corpus_options);

  buildsim::BuildOptions naive;
  // Min over several repeats: see CorpusCompilesAndMeasures.
  naive.incremental_repeats = 8;
  buildsim::BuildOptions smart = naive;
  smart.smart_incremental = true;

  auto naive_times = buildsim::MeasureBuild(corpus, naive);
  auto smart_times = buildsim::MeasureBuild(corpus, smart);
  ASSERT_TRUE(naive_times.ok());
  ASSERT_TRUE(smart_times.ok());
  EXPECT_LT(smart_times->incremental_tesla_s, naive_times->incremental_tesla_s);
}

}  // namespace
}  // namespace tesla::instr
