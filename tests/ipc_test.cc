// tesla::ipc coverage: the shm lane record format, the publisher/subscriber
// attach protocol, lane assignment and overflow accounting, producer-death
// salvage, and — the load-bearing property — a sidecar drain reaching
// verdicts, counters and transition coverage identical to inline dispatch.
// CI runs this binary under TSan: the cross-process protocol is exercised
// cross-thread here, which checks the same atomics.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "ipc/publisher.h"
#include "ipc/shm.h"
#include "ipc/subscriber.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "metrics/snapshot.h"
#include "runtime/handler.h"
#include "runtime/runtime.h"
#include "support/log.h"
#include "trace/format.h"

namespace tesla {
namespace {

using ipc::LaneReader;
using ipc::LaneWriter;
using ipc::PublisherOptions;
using ipc::ShmPublisher;
using ipc::ShmSegment;
using ipc::ShmState;
using ipc::ShmSubscriber;
using runtime::Binding;
using runtime::Event;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::ThreadContext;

Symbol S(const char* name) { return InternString(name); }

// Segment names are process-unique: a crashed earlier run's leftover name
// would make Create() fail with EEXIST.
std::string ShmName(const char* tag) {
  return std::string("tesla_test_") + tag + "_" + std::to_string(::getpid());
}

RuntimeOptions TestOptions() {
  RuntimeOptions options;
  options.fail_stop = false;
  return options;
}

bool EventsEqual(const Event& a, const Event& b) {
  if (a.kind != b.kind || a.count != b.count || a.truncated != b.truncated ||
      a.target != b.target || a.return_value != b.return_value) {
    return false;
  }
  for (size_t i = 0; i < a.count; i++) {
    if (a.values[i] != b.values[i] || a.vars[i] != b.vars[i]) {
      return false;
    }
  }
  return true;
}

TEST(ShmRing, PushPopRoundTripsAllEventShapes) {
  const std::string name = ShmName("ring");
  ShmSegment::Geometry geometry;
  geometry.lane_count = 1;
  geometry.lane_words = 256;
  auto created = ShmSegment::Create(name, geometry);
  ASSERT_TRUE(created.ok()) << created.error().ToString();
  ShmSegment& segment = *created.value();

  LaneWriter writer{segment.lane_control(0), segment.lane_words(0),
                    segment.header().lane_words - 1};
  LaneReader reader{segment.lane_control(0), segment.lane_words(0),
                    segment.header().lane_words - 1};

  std::vector<Event> pushed;
  pushed.push_back(Event::Call(S("shm_fn"), {}));
  int64_t args[] = {1, -2, 0x7fffffffffffffff, -4};
  pushed.push_back(Event::Call(S("shm_fn"), args));
  pushed.push_back(Event::Return(S("shm_fn"), args, -77));
  pushed.push_back(Event::Return(S("shm_fn"), {}, 0));  // return value zero
  pushed.push_back(Event::FieldStore(S("shm_field"), 10, -20, 30));
  Binding bindings[] = {{2, -9}, {0, 4}, {1, 0}};
  pushed.push_back(Event::Site(7, bindings));
  int64_t many[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};  // > kMaxEventArgs: truncated
  pushed.push_back(Event::Call(S("shm_fn"), many));
  int64_t full[] = {11, 12, 13, 14, 15, 16, 17, 18};  // exactly kMaxEventArgs
  pushed.push_back(Event::Return(S("shm_fn"), full, 99));

  for (const Event& event : pushed) {
    ASSERT_TRUE(writer.TryPush(event));
  }
  std::vector<Event> popped;
  EXPECT_EQ(reader.Pop(popped, 100), pushed.size());
  ASSERT_EQ(popped.size(), pushed.size());
  for (size_t i = 0; i < pushed.size(); i++) {
    EXPECT_TRUE(EventsEqual(pushed[i], popped[i])) << "event " << i;
  }
  EXPECT_TRUE(reader.Empty());
  ShmSegment::Unlink(name);
}

TEST(ShmRing, FullLaneRejectsThenResumesAfterDrain) {
  const std::string name = ShmName("full");
  ShmSegment::Geometry geometry;
  geometry.lane_count = 1;
  geometry.lane_words = 8;  // Create rounds up to 2 * kShmMaxRecordWords = 32
  auto created = ShmSegment::Create(name, geometry);
  ASSERT_TRUE(created.ok());
  ShmSegment& segment = *created.value();
  const uint64_t mask = segment.header().lane_words - 1;

  LaneWriter writer{segment.lane_control(0), segment.lane_words(0), mask};
  LaneReader reader{segment.lane_control(0), segment.lane_words(0), mask};

  int64_t args[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const Event fat = Event::Return(S("full_fn"), args, 1);  // kShmMaxRecordWords words
  size_t accepted = 0;
  while (writer.TryPush(fat)) {
    accepted++;
  }
  EXPECT_GE(accepted, 2u);
  EXPECT_FALSE(writer.TryPush(fat));

  std::vector<Event> out;
  EXPECT_EQ(reader.Pop(out, 1), 1u);  // one record of headroom
  EXPECT_TRUE(writer.TryPush(fat));
  out.clear();
  while (reader.Pop(out, 100) > 0) {  // a Pop sees the head as of its call
  }
  EXPECT_EQ(out.size(), accepted);
  for (const Event& event : out) {
    EXPECT_TRUE(EventsEqual(fat, event));
  }
  ShmSegment::Unlink(name);
}

// The acceptance property of the whole transport: an uninstrumented sidecar
// draining the shm stream must reach exactly the verdicts, per-class
// counters and transition coverage of inline dispatch over the same
// (deterministic) kernel workload.
TEST(Sidecar, DrainMatchesInlineDispatchExactly) {
  SetLogLevel(LogLevel::kSilent);

  auto drive = [](Runtime& rt) {
    kernelsim::KernelConfig config;
    config.tesla = &rt;
    config.bugs.kqueue_missing_mac_check = true;
    config.bugs.poll_uses_file_credential = true;
    config.bugs.setuid_skips_sugid_flag = true;
    kernelsim::Kernel kernel(config);
    kernelsim::Proc* proc = kernel.NewProcess(0);
    kernelsim::KThread td = kernel.NewThread(proc);
    kernelsim::OpenCloseLoop(kernel, td, 40);
    int64_t sock = kernel.SysSocket(td);
    kernel.SysConnect(td, sock);
    kernel.SysPoll(td, sock, 1);
    kernel.SysKevent(td, sock, 1);  // bug 1
    kernel.SysSetuid(td, 0);
    kernel.SysPoll(td, sock, 1);  // bug 2
    kernel.SysSetuid(td, 5);      // bug 3
  };

  // Inline reference run.
  RuntimeOptions inline_options = TestOptions();
  inline_options.metrics_mode = metrics::MetricsMode::kCounters;
  Runtime inline_rt(inline_options);
  auto manifest = kernelsim::KernelAssertions(kernelsim::kSetAll);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(inline_rt.Register(manifest.value()).ok());
  runtime::CountingHandler inline_violations;
  inline_rt.AddHandler(&inline_violations);
  drive(inline_rt);
  ASSERT_GE(inline_rt.stats().violations, 3u);

  // Published run: same workload, every event shipped through the segment.
  Runtime publisher_rt(TestOptions());
  auto publisher_manifest = kernelsim::KernelAssertions(kernelsim::kSetAll);
  ASSERT_TRUE(publisher_manifest.ok());
  ASSERT_TRUE(publisher_rt.Register(publisher_manifest.value()).ok());
  const std::string name = ShmName("differential");
  PublisherOptions publisher_options;
  publisher_options.lanes = 2;
  ShmPublisher publisher(publisher_rt, name, publisher_options);
  ASSERT_TRUE(publisher.Start("kernelsim:all").ok());

  auto attached = ShmSubscriber::Attach(name, /*timeout_ms=*/2000);
  ASSERT_TRUE(attached.ok()) << attached.error().ToString();
  ShmSubscriber& subscriber = *attached.value();
  EXPECT_EQ(subscriber.info().origin, "kernelsim:all");
  EXPECT_FALSE(subscriber.info().manifest_text.empty());
  EXPECT_EQ(subscriber.info().producer_pid, ::getpid());

  subscriber.InternSymbols();  // before the sidecar's Register()
  RuntimeOptions sidecar_options = subscriber.PublisherRuntimeOptions();
  sidecar_options.fail_stop = false;
  sidecar_options.metrics_mode = metrics::MetricsMode::kCounters;
  Runtime sidecar_rt(sidecar_options);
  auto sidecar_manifest = automata::Manifest::Deserialize(subscriber.info().manifest_text);
  ASSERT_TRUE(sidecar_manifest.ok()) << sidecar_manifest.error().ToString();
  ASSERT_TRUE(sidecar_rt.Register(sidecar_manifest.value()).ok());
  runtime::CountingHandler sidecar_violations;
  sidecar_rt.AddHandler(&sidecar_violations);

  ipc::DrainReport report;
  std::thread sidecar([&] { report = DrainAll(subscriber, sidecar_rt); });
  drive(publisher_rt);
  publisher.Stop();  // waits for the (already attached) consumer, then closes
  sidecar.join();

  // Nothing dispatched in the publisher process, nothing lost in transit.
  EXPECT_EQ(publisher_rt.stats().events, 0u);
  EXPECT_EQ(report.producer_dropped, 0u);
  EXPECT_EQ(report.lane_overflow, 0u);
  EXPECT_FALSE(report.producer_died);
  EXPECT_EQ(report.events, publisher.stats().published);
  EXPECT_EQ(subscriber.unknown_symbols(), 0u);

  // Verdicts: same violation sequence (one lane ⇒ publisher-thread order).
  ASSERT_EQ(sidecar_violations.violations().size(), inline_violations.violations().size());
  for (size_t i = 0; i < inline_violations.violations().size(); i++) {
    EXPECT_EQ(sidecar_violations.violations()[i].kind,
              inline_violations.violations()[i].kind);
    EXPECT_EQ(sidecar_violations.violations()[i].automaton,
              inline_violations.violations()[i].automaton);
  }

  // Semantic stats: identical except the transport accounting the sidecar
  // folds into the queue_* counters.
  for (const trace::StatsField& field : trace::kStatsFields) {
    if (std::strncmp(field.name, "queue_", 6) == 0) {
      continue;
    }
    EXPECT_EQ(sidecar_rt.stats().*field.field, inline_rt.stats().*field.field)
        << field.name;
  }
  EXPECT_EQ(sidecar_rt.stats().queue_events, inline_rt.stats().events);

  // Per-class counters and transition coverage (histograms are wall-clock
  // and not comparable).
  const metrics::Snapshot inline_metrics = inline_rt.CollectMetrics();
  const metrics::Snapshot sidecar_metrics = sidecar_rt.CollectMetrics();
  ASSERT_EQ(sidecar_metrics.classes.size(), inline_metrics.classes.size());
  for (size_t c = 0; c < inline_metrics.classes.size(); c++) {
    const metrics::ClassSnapshot& a = inline_metrics.classes[c];
    const metrics::ClassSnapshot& b = sidecar_metrics.classes[c];
    EXPECT_EQ(b.name, a.name);
    for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
      EXPECT_EQ(b.counters[k], a.counters[k]) << a.name << " counter " << k;
    }
    ASSERT_EQ(b.transitions.size(), a.transitions.size()) << a.name;
    for (size_t t = 0; t < a.transitions.size(); t++) {
      EXPECT_EQ(b.transitions[t].fired, a.transitions[t].fired)
          << a.name << " transition " << t;
    }
  }
}

// Each producer thread gets its own lane; a thread past the lane count
// cannot publish and is counted, never blocked.
TEST(Publisher, LaneAssignmentAndOverflowAccounting) {
  Runtime rt(TestOptions());  // no manifest: lane mechanics only
  const std::string name = ShmName("lanes");
  PublisherOptions options;
  options.lanes = 2;
  options.install_hook = false;
  options.wait_for_consumer = false;
  ShmPublisher publisher(rt, name, options);
  ASSERT_TRUE(publisher.Start("test:lanes").ok());

  constexpr int kThreads = 4;  // two get lanes, two overflow
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&publisher, t] {
      int64_t args[] = {t};
      const Event event = Event::Call(S("lane_fn"), args);
      for (int i = 0; i < kPerThread; i++) {
        publisher.Publish(event);  // counters checked after joining
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  const ipc::PublisherStats stats = publisher.stats();
  EXPECT_EQ(stats.published + stats.lane_overflow,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.published, uint64_t{2} * kPerThread);
  EXPECT_EQ(stats.lane_overflow, uint64_t{2} * kPerThread);
  EXPECT_EQ(publisher.segment_for_test()->header().lanes_allocated.load(), 4u);

  // Drain raw: per-lane counts must each be one thread's share.
  auto attached = ShmSubscriber::Attach(name, 1000);
  ASSERT_TRUE(attached.ok());
  publisher.Stop();
  for (uint32_t lane = 0; lane < 2; lane++) {
    std::vector<Event> events;
    while (attached.value()->PollLane(lane, events, 64) > 0) {
    }
    EXPECT_EQ(events.size(), static_cast<size_t>(kPerThread)) << "lane " << lane;
  }
  EXPECT_TRUE(attached.value()->closed());
}

TEST(Publisher, DropOnFullCountsInsteadOfBlocking) {
  Runtime rt(TestOptions());
  const std::string name = ShmName("drop");
  PublisherOptions options;
  options.lanes = 1;
  options.lane_capacity_events = 16;  // the floor Start() clamps to
  options.drop_on_full = true;
  options.install_hook = false;
  options.wait_for_consumer = false;
  ShmPublisher publisher(rt, name, options);
  ASSERT_TRUE(publisher.Start("test:drop").ok());

  const Event event = Event::Call(S("drop_fn"), {});
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(publisher.Publish(event));  // never blocks, never fails
  }
  const ipc::PublisherStats stats = publisher.stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.published, 0u);
  EXPECT_EQ(stats.published + stats.dropped, 10000u);
  publisher.Stop();
}

// The publisher process vanishing without kClosed: the drain loop must
// detect the death, salvage what the lanes hold, and report it.
TEST(Subscriber, ProducerDeathSalvagesLanes) {
  Runtime rt(TestOptions());
  const std::string name = ShmName("death");
  PublisherOptions options;
  options.lanes = 1;
  options.install_hook = false;
  options.wait_for_consumer = false;
  auto publisher = std::make_unique<ShmPublisher>(rt, name, options);
  ASSERT_TRUE(publisher->Start("test:death").ok());
  constexpr int kEvents = 25;
  for (int i = 0; i < kEvents; i++) {
    int64_t args[] = {i};
    ASSERT_TRUE(publisher->Publish(Event::Call(S("death_fn"), args)));
  }

  auto attached = ShmSubscriber::Attach(name, 1000);
  ASSERT_TRUE(attached.ok()) << attached.error().ToString();
  ShmSubscriber& subscriber = *attached.value();

  // A child that has already exited and been reaped: a real pid whose
  // kill(pid, 0) now reports ESRCH, exactly what a dead publisher looks like.
  pid_t dead = ::fork();
  if (dead == 0) {
    ::_exit(0);
  }
  ASSERT_GT(dead, 0);
  ASSERT_EQ(::waitpid(dead, nullptr, 0), dead);
  subscriber.header_for_test().producer_pid.store(dead, std::memory_order_relaxed);

  Runtime sidecar_rt(TestOptions());
  automata::Manifest empty;  // events route nowhere; salvage is still counted
  ASSERT_TRUE(sidecar_rt.Register(empty).ok());
  ipc::DrainReport report = DrainAll(subscriber, sidecar_rt);
  EXPECT_TRUE(report.producer_died);
  EXPECT_EQ(report.events, static_cast<uint64_t>(kEvents));  // salvaged
  EXPECT_FALSE(subscriber.closed());

  ShmSegment::Unlink(name);
  publisher.reset();  // Stop() after unlink: idempotent, no consumer wait
}

TEST(Subscriber, AttachTimesOutOnMissingName) {
  auto attached = ShmSubscriber::Attach(ShmName("never_created"), 50);
  ASSERT_FALSE(attached.ok());
  EXPECT_EQ(attached.error().code, trace::kErrUnreadable);
}

TEST(Subscriber, NewerSegmentVersionRejected) {
  const std::string name = ShmName("version");
  ShmSegment::Geometry geometry;
  auto created = ShmSegment::Create(name, geometry);
  ASSERT_TRUE(created.ok());
  created.value()->header().version = ipc::kShmVersion + 1;
  created.value()->header().state.store(static_cast<uint32_t>(ShmState::kLive),
                                        std::memory_order_release);
  auto attached = ShmSubscriber::Attach(name, 100);
  ASSERT_FALSE(attached.ok());
  EXPECT_EQ(attached.error().code, trace::kErrVersionMismatch);
  ShmSegment::Unlink(name);
}

TEST(Subscriber, CorruptMagicRejected) {
  const std::string name = ShmName("magic");
  ShmSegment::Geometry geometry;
  auto created = ShmSegment::Create(name, geometry);
  ASSERT_TRUE(created.ok());
  created.value()->header().magic[0] = 'X';
  created.value()->header().state.store(static_cast<uint32_t>(ShmState::kLive),
                                        std::memory_order_release);
  auto attached = ShmSubscriber::Attach(name, 100);
  ASSERT_FALSE(attached.ok());
  EXPECT_EQ(attached.error().code, trace::kErrCorrupt);
  ShmSegment::Unlink(name);
}

TEST(Segment, LeftoverNameFailsCreateWithHint) {
  const std::string name = ShmName("leftover");
  ShmSegment::Geometry geometry;
  auto first = ShmSegment::Create(name, geometry);
  ASSERT_TRUE(first.ok());
  auto second = ShmSegment::Create(name, geometry);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, trace::kErrUnreadable);
  EXPECT_NE(second.error().ToString().find("/dev/shm"), std::string::npos);
  ShmSegment::Unlink(name);
}

}  // namespace
}  // namespace tesla
