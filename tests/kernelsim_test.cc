#include <gtest/gtest.h>

#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "runtime/runtime.h"

namespace tesla::kernelsim {
namespace {

runtime::RuntimeOptions TestRuntimeOptions() {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  return options;
}

struct InstrumentedKernel {
  explicit InstrumentedKernel(uint32_t sets, BugConfig bugs = {},
                              runtime::RuntimeOptions options = TestRuntimeOptions())
      : rt(options) {
    auto manifest = KernelAssertions(sets);
    EXPECT_TRUE(manifest.ok()) << manifest.error().ToString();
    EXPECT_TRUE(rt.Register(manifest.value()).ok());
    KernelConfig config;
    config.tesla = &rt;
    config.bugs = bugs;
    kernel = std::make_unique<Kernel>(config);
  }

  runtime::Runtime rt;
  std::unique_ptr<Kernel> kernel;
};

TEST(Assertions, TableOneCounts) {
  EXPECT_EQ(KernelAssertionSources(kSetMacFs).size(), 25u);
  EXPECT_EQ(KernelAssertionSources(kSetMacSocket).size(), 11u);
  EXPECT_EQ(KernelAssertionSources(kSetMacProc).size(), 10u);
  EXPECT_EQ(KernelAssertionSources(kSetMac).size(), 48u);
  EXPECT_EQ(KernelAssertionSources(kSetProc).size(), 37u);
  EXPECT_EQ(KernelAssertionSources(kSetAll).size(), 96u);
}

TEST(Assertions, AllCompileAndRegister) {
  auto manifest = KernelAssertions(kSetAll);
  ASSERT_TRUE(manifest.ok()) << manifest.error().ToString();
  EXPECT_EQ(manifest->automata.size(), 96u);
  runtime::Runtime rt(TestRuntimeOptions());
  EXPECT_TRUE(rt.Register(manifest.value()).ok());
  EXPECT_EQ(rt.class_count(), 96u);
}

TEST(KernelBasics, OpenReadCloseWithoutInstrumentation) {
  Kernel kernel(KernelConfig{});
  Proc* proc = kernel.NewProcess(0);
  KThread td = kernel.NewThread(proc);

  int64_t fd = kernel.SysOpen(td, "/etc/passwd", kFRead);
  ASSERT_GE(fd, 0);
  EXPECT_GT(kernel.SysRead(td, fd, 100), 0);
  EXPECT_EQ(kernel.SysClose(td, fd), kOk);
  EXPECT_EQ(kernel.SysClose(td, fd), -kEbadf);
  EXPECT_EQ(kernel.SysOpen(td, "/missing", kFRead), -kEnoent);
}

TEST(KernelBasics, MacPolicyDeniesUpwardAccess) {
  Kernel kernel(KernelConfig{});
  Proc* root_proc = kernel.NewProcess(0);
  Proc* user = kernel.NewProcess(5);
  KThread root_td = kernel.NewThread(root_proc);
  KThread user_td = kernel.NewThread(user);

  // Raise the label on a file; the user (label 5) may not read label-9 data.
  Vnode* secret = kernel.Lookup("/data/file1");
  ASSERT_NE(secret, nullptr);
  secret->label = 9;
  EXPECT_EQ(kernel.SysOpen(user_td, "/data/file1", kFRead), -kEperm);
  EXPECT_GE(kernel.SysOpen(root_td, "/data/file1", kFRead), 0);
}

TEST(KernelBasics, SocketSendRecvPoll) {
  Kernel kernel(KernelConfig{});
  Proc* proc = kernel.NewProcess(0);
  KThread td = kernel.NewThread(proc);

  int64_t sock = kernel.SysSocket(td);
  ASSERT_GE(sock, 0);
  EXPECT_EQ(kernel.SysConnect(td, sock), kOk);
  EXPECT_EQ(kernel.SysSend(td, sock, 64), 64);
  EXPECT_EQ(kernel.SysPoll(td, sock, 1), 1);  // data buffered → readable
  EXPECT_EQ(kernel.SysRecv(td, sock, 64), 64);
  EXPECT_EQ(kernel.SysPoll(td, sock, 1), 0);  // drained
}

TEST(MacAssertions, CleanKernelHasNoViolations) {
  InstrumentedKernel ik(kSetAll);
  Proc* proc = ik.kernel->NewProcess(0);
  KThread td = ik.kernel->NewThread(proc);

  OpenCloseLoop(*ik.kernel, td, 50);
  OltpTransactions(*ik.kernel, td, 50);
  BuildCompile(*ik.kernel, td, 10, 1);
  int64_t fd = ik.kernel->SysOpen(td, "/", kFRead);
  ASSERT_GE(fd, 0);
  EXPECT_GT(ik.kernel->SysReaddir(td, fd), 0);
  ik.kernel->SysClose(td, fd);
  EXPECT_EQ(ik.kernel->SysExecve(td, "/bin/sh"), kOk);
  EXPECT_EQ(ik.kernel->SysKldload(td, "/lib/mod.ko"), kOk);
  EXPECT_EQ(ik.kernel->SysKevent(td, 0, 1), -kEbadf);
  EXPECT_EQ(ik.kernel->SysSetuid(td, 3), kOk);

  EXPECT_EQ(ik.rt.stats().violations, 0u)
      << "clean kernel must satisfy the full assertion suite";
  EXPECT_GT(ik.rt.stats().accepts, 0u);
}

TEST(MacAssertions, KqueueMissingCheckDetected) {
  // §3.5.2: "mac_socket_check_poll was being invoked for the select and poll
  // system calls, but not kqueue."
  BugConfig bugs;
  bugs.kqueue_missing_mac_check = true;
  InstrumentedKernel ik(kSetMacSocket, bugs);
  Proc* proc = ik.kernel->NewProcess(0);
  KThread td = ik.kernel->NewThread(proc);

  int64_t sock = ik.kernel->SysSocket(td);
  ASSERT_GE(sock, 0);

  // poll and select still perform the check: no violation.
  ik.kernel->SysPoll(td, sock, 1);
  ik.kernel->SysSelect(td, sock, 1);
  EXPECT_EQ(ik.rt.stats().violations, 0u);

  // kqueue reaches sopoll_generic without the check: TESLA fires.
  ik.kernel->SysKevent(td, sock, 1);
  EXPECT_EQ(ik.rt.stats().violations, 1u);
}

TEST(MacAssertions, WrongCredentialDetected) {
  // §3.5.2: "an error in one dynamic call graph caused the cached file_cred
  // to be passed down instead of active_cred."
  BugConfig bugs;
  bugs.poll_uses_file_credential = true;
  InstrumentedKernel ik(kSetMacSocket, bugs);
  Proc* proc = ik.kernel->NewProcess(0);
  KThread td = ik.kernel->NewThread(proc);

  int64_t sock = ik.kernel->SysSocket(td);
  ASSERT_GE(sock, 0);
  // The socket was created under the original credential; change creds so
  // the cached f_cred and the active credential diverge.
  ASSERT_EQ(ik.kernel->SysSetuid(td, 0), kOk);

  ik.kernel->SysPoll(td, sock, 1);
  EXPECT_EQ(ik.rt.stats().violations, 1u)
      << "poll authorised with the file credential must trip the assertion";
}

TEST(MacAssertions, WrongCredentialInvisibleWithoutCredChange) {
  // With identical creator and active credentials the bug is latent — which
  // is exactly why it survived until TESLA-style checking.
  BugConfig bugs;
  bugs.poll_uses_file_credential = true;
  InstrumentedKernel ik(kSetMacSocket, bugs);
  Proc* proc = ik.kernel->NewProcess(0);
  KThread td = ik.kernel->NewThread(proc);

  int64_t sock = ik.kernel->SysSocket(td);
  ik.kernel->SysPoll(td, sock, 1);
  EXPECT_EQ(ik.rt.stats().violations, 0u);
}

TEST(ProcAssertions, MissingSugidFlagDetected) {
  // §3.5.2's `eventually` example: credential modification must set P_SUGID
  // before the system call returns.
  BugConfig bugs;
  bugs.setuid_skips_sugid_flag = true;
  InstrumentedKernel ik(kSetProc, bugs);
  Proc* proc = ik.kernel->NewProcess(0);
  KThread td = ik.kernel->NewThread(proc);

  EXPECT_EQ(ik.kernel->SysSetuid(td, 7), kOk);
  EXPECT_EQ(ik.rt.stats().violations, 1u);
  EXPECT_EQ(proc->p_flag & kPSugid, 0u);
}

TEST(ProcAssertions, SugidFlagSatisfiedWhenSet) {
  InstrumentedKernel ik(kSetProc);
  Proc* proc = ik.kernel->NewProcess(0);
  KThread td = ik.kernel->NewThread(proc);

  EXPECT_EQ(ik.kernel->SysSetuid(td, 7), kOk);
  EXPECT_EQ(ik.rt.stats().violations, 0u);
  EXPECT_NE(proc->p_flag & kPSugid, 0u);
}

TEST(FsAssertions, Figure7PathsAllSatisfied) {
  InstrumentedKernel ik(kSetMacFs);
  Proc* proc = ik.kernel->NewProcess(0);
  KThread td = ik.kernel->NewThread(proc);

  // Path 1: plain open (mac_vnode_check_open).
  int64_t fd = ik.kernel->SysOpen(td, "/etc/passwd", kFRead);
  ASSERT_GE(fd, 0);
  // Path 2: read with an explicit check.
  EXPECT_GT(ik.kernel->SysRead(td, fd, 64), 0);
  ik.kernel->SysClose(td, fd);
  // Path 3: exec (mac_vnode_check_exec authorises the ufs_open, and the
  // image read is vn_rdwr(IO_NOMACCHECK)).
  EXPECT_EQ(ik.kernel->SysExecve(td, "/bin/sh"), kOk);
  // Path 4: module load (mac_kld_check_load authorises the ufs_open).
  EXPECT_EQ(ik.kernel->SysKldload(td, "/lib/mod.ko"), kOk);
  // Path 5: readdir → internal ffs_read under incallstack(ufs_readdir).
  int64_t dir = ik.kernel->SysOpen(td, "/", kFRead);
  ASSERT_GE(dir, 0);
  EXPECT_GT(ik.kernel->SysReaddir(td, dir), 0);
  ik.kernel->SysClose(td, dir);

  EXPECT_EQ(ik.rt.stats().violations, 0u);
}

TEST(Witness, DetectsLockOrderReversal) {
  Witness witness;
  LockClassId a = witness.RegisterClass("a");
  LockClassId b = witness.RegisterClass("b");
  Witness::ThreadLocks locks;

  EXPECT_TRUE(witness.Acquire(locks, a));
  EXPECT_TRUE(witness.Acquire(locks, b));  // establishes a → b
  witness.Release(locks, b);
  witness.Release(locks, a);

  EXPECT_TRUE(witness.Acquire(locks, b));
  EXPECT_FALSE(witness.Acquire(locks, a));  // b → a reverses the order
  EXPECT_EQ(witness.reversals(), 1u);
  ASSERT_EQ(witness.reports().size(), 1u);
  EXPECT_NE(witness.reports()[0].find("reversal"), std::string::npos);
}

TEST(Witness, RecursiveAcquisitionAllowed) {
  Witness witness;
  LockClassId a = witness.RegisterClass("a");
  Witness::ThreadLocks locks;
  EXPECT_TRUE(witness.Acquire(locks, a));
  EXPECT_TRUE(witness.Acquire(locks, a));
  witness.Release(locks, a);
  witness.Release(locks, a);
  EXPECT_EQ(witness.reversals(), 0u);
}

TEST(Workloads, ProduceExpectedTraffic) {
  Kernel kernel(KernelConfig{});
  Proc* proc = kernel.NewProcess(0);
  KThread td = kernel.NewThread(proc);

  WorkloadResult oc = OpenCloseLoop(kernel, td, 100);
  EXPECT_EQ(oc.syscalls, 200u);
  EXPECT_EQ(oc.errors, 0u);

  WorkloadResult oltp = OltpTransactions(kernel, td, 20);
  EXPECT_EQ(oltp.errors, 0u);
  EXPECT_GT(oltp.bytes, 0u);

  WorkloadResult build = BuildCompile(kernel, td, 5, 2);
  EXPECT_EQ(build.errors, 0u);
  EXPECT_GT(build.bytes, 0u);
  EXPECT_NE(build.compute_checksum, 0u);
}

TEST(Workloads, CleanUnderFullInstrumentationWithBothModes) {
  for (bool lazy : {false, true}) {
    runtime::RuntimeOptions options = TestRuntimeOptions();
    options.lazy_init = lazy;
    InstrumentedKernel ik(kSetAll, {}, options);
    Proc* proc = ik.kernel->NewProcess(0);
    KThread td = ik.kernel->NewThread(proc);

    OltpTransactions(*ik.kernel, td, 30);
    BuildCompile(*ik.kernel, td, 5, 1);
    EXPECT_EQ(ik.rt.stats().violations, 0u) << "lazy=" << lazy;
    if (!lazy) {
      // Naive mode instantiates every syscall-bounded automaton per syscall.
      EXPECT_GT(ik.rt.stats().instances_created, ik.rt.stats().bound_entries);
    }
  }
}

TEST(DebugKernel, WitnessWorkIsCharged) {
  KernelConfig config;
  config.debug_checks = true;
  Kernel kernel(config);
  Proc* proc = kernel.NewProcess(0);
  KThread td = kernel.NewThread(proc);
  OpenCloseLoop(kernel, td, 10);
  EXPECT_GT(kernel.debug_work(), 0u);
}

}  // namespace
}  // namespace tesla::kernelsim
