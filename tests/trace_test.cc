// tesla::trace coverage: ring wrap/drop accounting, harvest-during-write
// races (run under TSan in CI), recorder merging, the binary capture format,
// capture→replay round trips through the simulators, batch ingestion
// equivalence, growable site-variant buffers, and violation forensics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "runtime/runtime.h"
#include "sslsim/fetch.h"
#include "support/log.h"
#include "trace/forensics.h"
#include "trace/format.h"
#include "trace/recorder.h"
#include "trace/replay.h"
#include "trace/ring.h"

namespace tesla {
namespace {

using automata::CompileAssertion;
using runtime::Binding;
using runtime::Event;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::ThreadContext;
using trace::TraceRecord;
using trace::TraceRing;

Symbol S(const char* name) { return InternString(name); }

RuntimeOptions TestOptions(trace::TraceMode mode = trace::TraceMode::kOff) {
  RuntimeOptions options;
  options.fail_stop = false;
  options.trace_mode = mode;
  return options;
}

// A record whose every payload word is derived from its sequence number, so
// a torn copy (words from two different writes) is detectable.
TraceRecord SeqRecord(uint64_t seq) {
  TraceRecord record;
  record.seq = seq;
  record.ctx = static_cast<uint32_t>(seq * 3);
  record.target = static_cast<uint32_t>(seq * 5 + 1);
  record.return_value = static_cast<int64_t>(seq * 7);
  for (size_t i = 0; i < runtime::kMaxEventArgs; i++) {
    record.values[i] = static_cast<int64_t>(seq * 11 + i);
  }
  return record;
}

bool ConsistentWithSeq(const TraceRecord& record) {
  if (record.ctx != static_cast<uint32_t>(record.seq * 3)) return false;
  if (record.target != static_cast<uint32_t>(record.seq * 5 + 1)) return false;
  if (record.return_value != static_cast<int64_t>(record.seq * 7)) return false;
  for (size_t i = 0; i < runtime::kMaxEventArgs; i++) {
    if (record.values[i] != static_cast<int64_t>(record.seq * 11 + i)) return false;
  }
  return true;
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp") + "/" + name;
}

TEST(TraceRing, WrapOverwritesOldestAndAccounts) {
  TraceRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (uint64_t seq = 0; seq < 20; seq++) {
    ring.Push(SeqRecord(seq));
  }
  std::vector<TraceRecord> out;
  TraceRing::HarvestStats stats = ring.Harvest(out);
  EXPECT_EQ(stats.produced, 20u);
  EXPECT_EQ(stats.overwritten, 12u);  // 20 pushed, window of 8
  // The oldest in-window slot is conservatively discarded once the ring has
  // wrapped: its overwriter (index i+capacity == head) may have started
  // writing words without publishing, and the harvester cannot tell.
  EXPECT_EQ(stats.torn, 1u);
  ASSERT_EQ(out.size(), 7u);
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(out[i].seq, 13 + i);  // oldest surviving record first
    EXPECT_TRUE(ConsistentWithSeq(out[i]));
  }
}

TEST(TraceRing, PartialFillHarvestsEverything) {
  TraceRing ring(64);
  for (uint64_t seq = 0; seq < 5; seq++) {
    ring.Push(SeqRecord(seq));
  }
  std::vector<TraceRecord> out;
  TraceRing::HarvestStats stats = ring.Harvest(out);
  EXPECT_EQ(stats.produced, 5u);
  EXPECT_EQ(stats.overwritten, 0u);
  EXPECT_EQ(stats.torn, 0u);
  ASSERT_EQ(out.size(), 5u);
}

// The race the tear-detection protocol exists for: a consumer harvesting
// while the producer keeps writing. Every harvested record must be intact
// (no mixed words) and the accounting must cover every produced record.
// CI runs this test under TSan; the ring's loads/stores must all be atomic.
TEST(TraceRing, HarvestDuringConcurrentWritesNeverTears) {
  constexpr uint64_t kPushes = 200000;
  TraceRing ring(64);
  // The producer stalls at the halfway mark until the consumer has harvested
  // at least once: on a loaded machine the producer could otherwise finish
  // before the first harvest, and the test would never observe a harvest
  // racing live writes.
  std::atomic<bool> harvested_once{false};
  std::thread producer([&ring, &harvested_once] {
    for (uint64_t seq = 0; seq < kPushes; seq++) {
      if (seq == kPushes / 2) {
        while (!harvested_once.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
      ring.Push(SeqRecord(seq));
    }
  });

  uint64_t harvests = 0;
  uint64_t last_produced = 0;
  while (last_produced < kPushes) {
    std::vector<TraceRecord> out;
    TraceRing::HarvestStats stats = ring.Harvest(out);
    EXPECT_GE(stats.produced, last_produced);
    last_produced = stats.produced;
    EXPECT_EQ(stats.produced, stats.overwritten + stats.torn + out.size());
    uint64_t prev_seq = 0;
    for (const TraceRecord& record : out) {
      EXPECT_TRUE(ConsistentWithSeq(record)) << "torn record at seq " << record.seq;
      if (&record != &out.front()) {
        EXPECT_EQ(record.seq, prev_seq + 1);  // the window is contiguous
      }
      prev_seq = record.seq;
    }
    harvests++;
    harvested_once.store(true, std::memory_order_release);
  }
  producer.join();
  EXPECT_GT(harvests, 1u);

  // Quiescent harvest after the producer finished sees the full tail (minus
  // the oldest slot, conservatively treated as possibly-in-rewrite).
  std::vector<TraceRecord> out;
  TraceRing::HarvestStats stats = ring.Harvest(out);
  EXPECT_EQ(stats.produced, kPushes);
  EXPECT_EQ(stats.torn, 1u);
  EXPECT_EQ(out.size(), ring.capacity() - 1);
}

TEST(Recorder, MergesContextsBySequence) {
  trace::Recorder recorder({trace::TraceMode::kFlightRecorder, 64, 1 << 10});
  trace::ContextLog* a = recorder.RegisterContext();
  trace::ContextLog* b = recorder.RegisterContext();
  for (int i = 0; i < 10; i++) {
    recorder.Record(*a, Event::Call(S("from_a"), {}));
    recorder.Record(*b, Event::Call(S("from_b"), {}));
  }
  trace::Snapshot snapshot = recorder.Harvest();
  EXPECT_EQ(snapshot.produced, 20u);
  EXPECT_EQ(snapshot.dropped, 0u);
  ASSERT_EQ(snapshot.records.size(), 20u);
  for (size_t i = 0; i < snapshot.records.size(); i++) {
    EXPECT_EQ(snapshot.records[i].seq, i);  // global order across both rings
    EXPECT_EQ(snapshot.records[i].ctx, i % 2 == 0 ? a->id() : b->id());
  }
  EXPECT_GT(recorder.Harvest().epoch, snapshot.epoch);
}

TEST(Recorder, FullCaptureCapDropsAreCounted) {
  trace::Recorder recorder({trace::TraceMode::kFullCapture, 64, 4});
  trace::ContextLog* log = recorder.RegisterContext();
  for (int i = 0; i < 10; i++) {
    recorder.Record(*log, Event::Call(S("capped"), {}));
  }
  trace::Snapshot snapshot = recorder.Harvest();
  EXPECT_EQ(snapshot.produced, 10u);
  EXPECT_EQ(snapshot.dropped, 6u);
  EXPECT_EQ(snapshot.records.size(), 4u);
}

TEST(TraceFormat, BinaryRoundTrip) {
  const std::string path = TempPath("tesla_format_roundtrip.trace");
  trace::CaptureOptions options;
  options.lazy_init = false;
  options.use_dfa = true;
  options.instance_index = false;
  options.instances_per_context = 12345;
  options.global_shards = 3;

  std::vector<TraceRecord> records;
  {
    uint64_t seq = 0;
    int64_t args[] = {1, -2, 3};
    records.push_back(trace::MakeRecord(seq++, 0, Event::Call(S("format_fn"), args)));
    records.push_back(trace::MakeRecord(seq++, 1, Event::Return(S("format_fn"), args, -77)));
    records.push_back(
        trace::MakeRecord(seq++, 0, Event::FieldStore(S("format_field"), 10, 20, 30)));
    Binding bindings[] = {{2, -9}, {0, 4}};
    records.push_back(trace::MakeRecord(seq++, 2, Event::Site(7, bindings)));
    int64_t many[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};  // > kMaxEventArgs: truncated
    records.push_back(trace::MakeRecord(seq++, 0, Event::Call(S("format_fn"), many)));
  }

  trace::SemanticSummary summary;
  summary.dropped = 2;
  uint64_t value = 100;
  for (const trace::StatsField& field : trace::kStatsFields) {
    summary.stats.*field.field = value++;
  }
  summary.violations.emplace_back(runtime::ViolationKind::kBadSite, "format-test");
  summary.violations.emplace_back(runtime::ViolationKind::kStrictEvent, "format-test-2");

  trace::TraceWriter writer;
  ASSERT_TRUE(writer.Open(path, "test:format", options, GlobalInterner()).ok());
  for (const TraceRecord& record : records) {
    writer.Append(record);
  }
  ASSERT_TRUE(writer.Finish(summary).ok());

  auto read = trace::TraceFile::Read(path);
  ASSERT_TRUE(read.ok()) << read.error().ToString();
  const trace::TraceFile& file = read.value();
  EXPECT_EQ(file.version, trace::kTraceVersion);
  EXPECT_EQ(file.origin, "test:format");
  EXPECT_EQ(file.options.lazy_init, options.lazy_init);
  EXPECT_EQ(file.options.use_dfa, options.use_dfa);
  EXPECT_EQ(file.options.instance_index, options.instance_index);
  EXPECT_EQ(file.options.instances_per_context, options.instances_per_context);
  EXPECT_EQ(file.options.global_shards, options.global_shards);
  EXPECT_EQ(file.symbols.size(), GlobalInterner().size());
  EXPECT_EQ(file.symbols[S("format_fn")], "format_fn");

  ASSERT_EQ(file.records.size(), records.size());
  for (size_t i = 0; i < records.size(); i++) {
    EXPECT_EQ(file.records[i].seq, records[i].seq) << i;
    EXPECT_EQ(file.records[i].ctx, records[i].ctx) << i;
    EXPECT_EQ(file.records[i].target, records[i].target) << i;
    EXPECT_EQ(file.records[i].kind, records[i].kind) << i;
    EXPECT_EQ(file.records[i].count, records[i].count) << i;
    EXPECT_EQ(file.records[i].flags, records[i].flags) << i;
    EXPECT_EQ(file.records[i].return_value, records[i].return_value) << i;
    for (size_t j = 0; j < records[i].count; j++) {
      EXPECT_EQ(file.records[i].values[j], records[i].values[j]) << i << "," << j;
    }
  }
  EXPECT_TRUE((file.records[4].flags & trace::kFlagTruncated) != 0);
  for (size_t j = 0; j < 2; j++) {
    EXPECT_EQ(file.records[3].vars[j], records[3].vars[j]);
  }

  EXPECT_EQ(file.summary.dropped, summary.dropped);
  for (const trace::StatsField& field : trace::kStatsFields) {
    EXPECT_EQ(file.summary.stats.*field.field, summary.stats.*field.field) << field.name;
  }
  ASSERT_EQ(file.summary.violations.size(), summary.violations.size());
  EXPECT_EQ(file.summary.violations[0], summary.violations[0]);
  EXPECT_EQ(file.summary.violations[1], summary.violations[1]);
  std::remove(path.c_str());
}

// End-to-end determinism through the kernel simulator: a buggy run is
// captured, then replayed into a fresh Runtime, and the replay must
// reproduce the stats and the violation sequence event for event.
TEST(TraceReplay, KernelsimCaptureRoundTrips) {
  SetLogLevel(LogLevel::kSilent);
  const std::string path = TempPath("tesla_kernelsim_roundtrip.trace");
  Runtime rt(TestOptions(trace::TraceMode::kFullCapture));
  auto manifest = kernelsim::KernelAssertions(kernelsim::kSetAll);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(rt.Register(manifest.value()).ok());

  kernelsim::KernelConfig config;
  config.tesla = &rt;
  config.bugs.kqueue_missing_mac_check = true;
  config.bugs.poll_uses_file_credential = true;
  config.bugs.setuid_skips_sugid_flag = true;
  kernelsim::Kernel kernel(config);
  kernelsim::Proc* proc = kernel.NewProcess(0);
  kernelsim::KThread td = kernel.NewThread(proc);

  kernelsim::OpenCloseLoop(kernel, td, 20);
  int64_t sock = kernel.SysSocket(td);
  kernel.SysConnect(td, sock);
  kernel.SysPoll(td, sock, 1);
  kernel.SysKevent(td, sock, 1);  // bug 1
  kernel.SysSetuid(td, 0);
  kernel.SysPoll(td, sock, 1);    // bug 2
  kernel.SysSetuid(td, 5);        // bug 3

  ASSERT_GE(rt.stats().violations, 3u);
  ASSERT_TRUE(trace::WriteCapture(path, "kernelsim:all", rt).ok());

  auto replayed = trace::ReplayFile(path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().ToString();
  const trace::ReplayResult& result = replayed.value();
  EXPECT_TRUE(result.matched) << result.divergence;
  EXPECT_EQ(result.events_replayed, rt.stats().events);
  for (const trace::StatsField& field : trace::kStatsFields) {
    EXPECT_EQ(result.stats.*field.field, rt.stats().*field.field) << field.name;
  }
  EXPECT_EQ(result.violations, rt.violation_log());
  std::remove(path.c_str());
}

TEST(TraceReplay, SslsimCaptureRoundTrips) {
  SetLogLevel(LogLevel::kSilent);
  const std::string path = TempPath("tesla_sslsim_roundtrip.trace");
  Runtime rt(TestOptions(trace::TraceMode::kFullCapture));
  auto manifest = sslsim::FetchAssertions();
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(rt.Register(manifest.value()).ok());
  ThreadContext ctx(rt);

  sslsim::SslInstrumentation instr{&rt, &ctx};
  sslsim::FetchClient client(instr, sslsim::SslConfig{});
  client.FetchDocument(sslsim::Server::Honest(0x5eed, "<html>ok</html>"));
  client.FetchDocument(sslsim::Server::Malicious(0x5eed, "<html>evil</html>"));

  ASSERT_GE(rt.stats().violations, 1u);
  ASSERT_TRUE(trace::WriteCapture(path, "sslsim:fetch", rt).ok());

  auto replayed = trace::ReplayFile(path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().ToString();
  EXPECT_TRUE(replayed.value().matched) << replayed.value().divergence;
  EXPECT_EQ(replayed.value().violations, rt.violation_log());
  std::remove(path.c_str());
}

// A schedule with clean and violating passes over a global automaton, as a
// flat event vector both entry points can consume.
std::vector<Event> GlobalSchedule(uint32_t id) {
  std::vector<Event> events;
  int64_t ok_arg[] = {0};
  Binding site[] = {{0, 0}};
  for (int round = 0; round < 50; round++) {
    events.push_back(Event::Call(S("syscall"), {}));
    if (round % 5 != 4) {  // every fifth bound omits the check: a violation
      events.push_back(Event::Return(S("check"), ok_arg, 0));
    }
    events.push_back(Event::Site(id, site));
    events.push_back(Event::Return(S("syscall"), {}, 0));
  }
  return events;
}

// OnEvents must be semantically identical to per-event OnEvent, including
// for global automata where the batch path holds every shard lock for the
// whole batch (and per-event acquisitions are elided).
TEST(BatchIngestion, OnEventsMatchesOnEventForGlobalAutomata) {
  constexpr const char* kSource =
      "TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))";
  auto make = [&](Runtime& rt) {
    auto automaton = CompileAssertion(kSource, {}, "batch");
    ASSERT_TRUE(automaton.ok());
    automata::Manifest manifest;
    manifest.Add(std::move(automaton.value()));
    ASSERT_TRUE(rt.Register(manifest).ok());
  };
  Runtime single_rt(TestOptions());
  Runtime batch_rt(TestOptions());
  make(single_rt);
  make(batch_rt);

  std::vector<Event> events = GlobalSchedule(0);
  {
    ThreadContext ctx(single_rt);
    for (const Event& event : events) {
      single_rt.OnEvent(ctx, event);
    }
  }
  {
    ThreadContext ctx(batch_rt);
    batch_rt.OnEvents(ctx, events);
  }

  EXPECT_EQ(single_rt.stats().violations, 10u);
  for (const trace::StatsField& field : trace::kStatsFields) {
    EXPECT_EQ(batch_rt.stats().*field.field, single_rt.stats().*field.field) << field.name;
  }
}

// A violation mid-batch triggers forensics (a recorder harvest) while the
// dispatching thread holds every shard lock; the capture locks nest strictly
// inside the shard locks, so this must complete and attach a backtrace.
TEST(BatchIngestion, ForensicsDuringBatchDoesNotDeadlock) {
  constexpr const char* kSource =
      "TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))";
  Runtime rt(TestOptions(trace::TraceMode::kFlightRecorder));
  auto automaton = CompileAssertion(kSource, {}, "batch");
  ASSERT_TRUE(automaton.ok());
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  ASSERT_TRUE(rt.Register(manifest).ok());
  runtime::CountingHandler violations;
  rt.AddHandler(&violations);

  ThreadContext ctx(rt);
  rt.OnEvents(ctx, GlobalSchedule(0));
  ASSERT_EQ(rt.stats().violations, 10u);
  for (const runtime::Violation& violation : violations.violations()) {
    EXPECT_FALSE(violation.backtrace.empty());
  }
}

// More satisfied incallstack() site variants than the (formerly fixed,
// 17-slot) site-symbol buffer holds: the growable buffer must keep every
// variant, so the schema-preserved truncation counter stays zero and no
// satisfied predicate is lost. A TSEQUENCE of 20 incallstack() elements
// needs all 20 variants offered — with the old buffer, elements past 17
// were dropped and the sequence could never complete.
TEST(SiteVariants, ManySatisfiedIncallstackVariantsAreNeverDropped) {
  constexpr int kVariants = 20;
  std::string source = "TESLA_WITHIN(syscall, TSEQUENCE(";
  for (int i = 0; i < kVariants; i++) {
    source += std::string(i == 0 ? "" : ", ") + "incallstack(frame" + std::to_string(i) + ")";
  }
  source += "))";

  Runtime rt(TestOptions());
  auto automaton = CompileAssertion(source, {}, "variants");
  ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  ASSERT_TRUE(rt.Register(manifest).ok());

  ThreadContext ctx(rt);
  for (int i = 0; i < kVariants; i++) {
    rt.OnFunctionCall(ctx, S(("frame" + std::to_string(i)).c_str()), {});
  }
  rt.OnFunctionCall(ctx, S("syscall"), {});
  for (int i = 0; i < kVariants; i++) {
    rt.OnAssertionSite(ctx, 0, {});  // each visit steps one sequence element
  }
  rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  EXPECT_EQ(rt.stats().violations, 0u);
  EXPECT_GE(rt.stats().accepts, 1u);
  EXPECT_EQ(rt.stats().site_variant_truncations, 0u);
}

TEST(Forensics, DescribeFilterAndRender) {
  trace::Recorder recorder({trace::TraceMode::kFlightRecorder, 64, 1 << 10});
  trace::ContextLog* log = recorder.RegisterContext();
  int64_t args[] = {42};
  recorder.Record(*log, Event::Call(S("relevant_fn"), args));
  recorder.Record(*log, Event::Call(S("unrelated_fn"), {}));
  Binding site[] = {{0, 42}};
  recorder.Record(*log, Event::Site(3, site));
  recorder.Record(*log, Event::Site(9, site));  // a different class's site
  trace::Snapshot snapshot = recorder.Harvest();
  ASSERT_EQ(snapshot.records.size(), 4u);

  trace::SymbolResolver resolve = trace::InternerResolver();
  EXPECT_NE(trace::DescribeRecord(snapshot.records[0], resolve).find("relevant_fn"),
            std::string::npos);

  const uint32_t symbols[] = {S("relevant_fn")};
  std::vector<TraceRecord> relevant =
      trace::FilterRelevant(snapshot.records, /*class_id=*/3, symbols, /*max_events=*/16);
  ASSERT_EQ(relevant.size(), 2u);  // the relevant call and class 3's site only
  EXPECT_EQ(relevant[0].seq, 0u);
  EXPECT_EQ(relevant[1].seq, 2u);

  auto automaton = CompileAssertion(
      "TESLA_WITHIN(syscall, previously(relevant_fn(x) == 0))", {}, "forensics");
  ASSERT_TRUE(automaton.ok());
  std::string backtrace = trace::RenderBacktrace(snapshot, automaton.value(), 3, symbols,
                                                 /*max_events=*/16, resolve);
  EXPECT_NE(backtrace.find("relevant_fn"), std::string::npos);
  EXPECT_NE(backtrace.find("2 relevant"), std::string::npos);
}

TEST(Forensics, ViolationCarriesBacktraceAndHighlightedDot) {
  SetLogLevel(LogLevel::kSilent);
  Runtime rt(TestOptions(trace::TraceMode::kFlightRecorder));
  auto automaton = CompileAssertion(
      "TESLA_WITHIN(syscall, previously(audit(x) == 0))", {}, "forensic-violation");
  ASSERT_TRUE(automaton.ok());
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  ASSERT_TRUE(rt.Register(manifest).ok());
  runtime::CountingHandler handler;
  rt.AddHandler(&handler);

  ThreadContext ctx(rt);
  rt.OnFunctionCall(ctx, S("syscall"), {});
  rt.OnAssertionSite(ctx, 0, {});  // no audit() happened: a violation

  ASSERT_EQ(handler.violations().size(), 1u);
  const std::string& backtrace = handler.violations()[0].backtrace;
  EXPECT_NE(backtrace.find("syscall"), std::string::npos);   // the relevant tail
  EXPECT_NE(backtrace.find("digraph"), std::string::npos);   // the DOT graph
  EXPECT_NE(backtrace.find("fillcolor"), std::string::npos); // live-state highlight
}

}  // namespace
}  // namespace tesla
