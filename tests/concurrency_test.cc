// Multithreaded stress test for the sharded global-context store.
//
// N real threads each drive their own global automaton class (disjoint
// function alphabets), so every per-class outcome is deterministic even
// though the threads hammer the runtime — and the shard locks — in parallel.
// The aggregate statistics must therefore be identical to a single-threaded
// replay of the same per-class event streams. Run under -fsanitize=thread in
// CI, this doubles as the data-race check for the dispatch plan and the
// shard locking protocol.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "runtime/runtime.h"

namespace tesla {
namespace {

constexpr int kClasses = 8;
constexpr int kIterations = 2000;

struct ClassSymbols {
  Symbol enter;
  Symbol check;
  Symbol exit;
  uint32_t id;
};

automata::Manifest MakeManifest() {
  automata::Manifest manifest;
  for (int g = 0; g < kClasses; g++) {
    const std::string n = std::to_string(g);
    const std::string source = "TESLA_GLOBAL(call(enter" + n + "), returnfrom(exit" + n +
                               "), previously(check" + n + "(x) == 0))";
    auto automaton = automata::CompileAssertion(source, {}, "conc-" + n);
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    manifest.Add(std::move(automaton.value()));
  }
  return manifest;
}

// Interned up front on the main thread: the global interner is not
// synchronised, and worker threads must only read symbols.
std::vector<ClassSymbols> ResolveSymbols(runtime::Runtime& rt) {
  std::vector<ClassSymbols> symbols;
  for (int g = 0; g < kClasses; g++) {
    const std::string n = std::to_string(g);
    ClassSymbols s;
    s.enter = InternString("enter" + n);
    s.check = InternString("check" + n);
    s.exit = InternString("exit" + n);
    s.id = static_cast<uint32_t>(rt.FindAutomaton("conc-" + n));
    EXPECT_GE(rt.FindAutomaton("conc-" + n), 0);
    symbols.push_back(s);
  }
  return symbols;
}

// One class's full event stream: every 5th bound skips the check, so the
// site deterministically fires a violation; all others accept.
void DriveClass(runtime::Runtime& rt, runtime::ThreadContext& ctx, const ClassSymbols& s) {
  for (int i = 0; i < kIterations; i++) {
    rt.OnFunctionCall(ctx, s.enter, {});
    if (i % 5 != 4) {
      int64_t args[] = {i % 7};
      rt.OnFunctionReturn(ctx, s.check, args, 0);
    }
    runtime::Binding site[] = {{0, i % 7}};
    rt.OnAssertionSite(ctx, s.id, site);
    rt.OnFunctionReturn(ctx, s.exit, {}, 0);
  }
}

struct Totals {
  uint64_t accepts;
  uint64_t violations;
  uint64_t instances_created;
  uint64_t bound_entries;
  uint64_t bound_exits;
};

Totals RunWorkload(size_t shards, bool threaded) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = shards;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  EXPECT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);

  if (threaded) {
    std::vector<std::thread> workers;
    for (int g = 0; g < kClasses; g++) {
      workers.emplace_back([&rt, &symbols, g] {
        runtime::ThreadContext ctx(rt);
        DriveClass(rt, ctx, symbols[g]);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  } else {
    runtime::ThreadContext ctx(rt);
    for (int g = 0; g < kClasses; g++) {
      DriveClass(rt, ctx, symbols[g]);
    }
  }

  const runtime::RuntimeStats& stats = rt.stats();
  return Totals{stats.accepts, stats.violations, stats.instances_created,
                stats.bound_entries, stats.bound_exits};
}

class ConcurrencyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ConcurrencyTest, ThreadedCountsMatchSingleThreadedReplay) {
  const size_t shards = GetParam();
  Totals threaded = RunWorkload(shards, /*threaded=*/true);
  Totals replay = RunWorkload(shards, /*threaded=*/false);

  // Sanity: the workload produced real activity on both sides.
  EXPECT_GT(threaded.accepts, 0u);
  EXPECT_GT(threaded.violations, 0u);

  EXPECT_EQ(threaded.accepts, replay.accepts);
  EXPECT_EQ(threaded.violations, replay.violations);
  EXPECT_EQ(threaded.instances_created, replay.instances_created);
  EXPECT_EQ(threaded.bound_entries, replay.bound_entries);
  EXPECT_EQ(threaded.bound_exits, replay.bound_exits);
}

INSTANTIATE_TEST_SUITE_P(Shards, ConcurrencyTest,
                         ::testing::Values(size_t{1}, size_t{4}, size_t{8}));

}  // namespace
}  // namespace tesla
