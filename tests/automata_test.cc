#include <gtest/gtest.h>

#include "automata/determinize.h"
#include "automata/dot.h"
#include "automata/lower.h"
#include "automata/manifest.h"
#include "parser/parser.h"

namespace tesla {
namespace {

using automata::Automaton;
using automata::CompileAssertion;
using automata::EventPattern;
using automata::PatternKind;
using automata::StateBit;
using automata::StateSet;

// Finds the symbol index of the (unique) pattern for `function` with `kind`,
// or -1.
int SymbolFor(const Automaton& automaton, PatternKind kind, const std::string& function) {
  for (size_t i = 0; i < automaton.alphabet.size(); i++) {
    const EventPattern& pattern = automaton.alphabet[i];
    if (pattern.kind == kind && SymbolName(pattern.function) == function) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST(Lower, PreviouslyShape) {
  auto automaton = CompileAssertion("TESLA_WITHIN(f, previously(check(x) == 0))");
  ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
  EXPECT_TRUE(automaton->has_site);
  // At least: 0 (pre-init), body entry, post-check, post-site, accept. The
  // Glushkov construction may add unreachable helper states.
  EXPECT_GE(automaton->state_count, 5u);
  EXPECT_LE(automaton->state_count, 8u);
  EXPECT_EQ(automaton->variables.size(), 1u);
  EXPECT_EQ(automaton->variables[0], "x");

  // From the instance-initial state, the site event must NOT be consumable
  // (reaching the site without the check is the violation).
  StateSet initial = automaton->InitialInstanceStates();
  EXPECT_EQ(automaton->Step(initial, automaton->site_symbol), 0u);

  // check(x)==0 then site then cleanup reaches accept.
  int check = SymbolFor(*automaton, PatternKind::kFunctionReturn, "check");
  ASSERT_GE(check, 0);
  StateSet s = automaton->Step(initial, static_cast<uint16_t>(check));
  ASSERT_NE(s, 0u);
  s = automaton->Step(s, automaton->site_symbol);
  ASSERT_NE(s, 0u);
  s = automaton->Step(s, automaton->cleanup_symbol);
  EXPECT_EQ(s, StateBit(automaton->accept_state));
}

TEST(Lower, BypassCleanupBeforeSite) {
  // Paper §4.1: code paths that call foo but never pass through the assertion
  // site must be allowed to close the bound.
  auto automaton = CompileAssertion("TESLA_WITHIN(f, previously(check(x) == 0))");
  ASSERT_TRUE(automaton.ok());
  StateSet initial = automaton->InitialInstanceStates();

  // Close immediately: fine.
  EXPECT_NE(automaton->Step(initial, automaton->cleanup_symbol), 0u);

  // check() then close without reaching the site: also fine (bypass).
  int check = SymbolFor(*automaton, PatternKind::kFunctionReturn, "check");
  StateSet s = automaton->Step(initial, static_cast<uint16_t>(check));
  EXPECT_NE(automaton->Step(s, automaton->cleanup_symbol), 0u);
}

TEST(Lower, EventuallyRequiresCompletionAfterSite) {
  auto automaton = CompileAssertion("TESLA_WITHIN(f, eventually(audit(x) == 0))");
  ASSERT_TRUE(automaton.ok());
  StateSet initial = automaton->InitialInstanceStates();

  // Site passed but audit never happened: cleanup has no transition.
  StateSet after_site = automaton->Step(initial, automaton->site_symbol);
  ASSERT_NE(after_site, 0u);
  EXPECT_EQ(automaton->Step(after_site, automaton->cleanup_symbol), 0u);

  // Site then audit: cleanup accepts.
  int audit = SymbolFor(*automaton, PatternKind::kFunctionReturn, "audit");
  StateSet done = automaton->Step(after_site, static_cast<uint16_t>(audit));
  ASSERT_NE(done, 0u);
  EXPECT_NE(automaton->Step(done, automaton->cleanup_symbol), 0u);

  // Never reaching the site is fine (bypass).
  EXPECT_NE(automaton->Step(initial, automaton->cleanup_symbol), 0u);
}

TEST(Lower, RepeatedSiteVisitsAfterSatisfactionAreAllowed) {
  auto automaton = CompileAssertion("TESLA_WITHIN(f, previously(check(x) == 0))");
  ASSERT_TRUE(automaton.ok());
  int check = SymbolFor(*automaton, PatternKind::kFunctionReturn, "check");
  StateSet s = automaton->Step(automaton->InitialInstanceStates(), static_cast<uint16_t>(check));
  s = automaton->Step(s, automaton->site_symbol);
  ASSERT_NE(s, 0u);
  // Second site visit within the same bound: self-loop keeps it alive.
  StateSet again = automaton->Step(s, automaton->site_symbol);
  EXPECT_NE(again, 0u);
  EXPECT_NE(automaton->Step(again, automaton->cleanup_symbol), 0u);
}

TEST(Lower, OrCrossProductToleratesBothBranches) {
  // Paper §3.4.2: "it is not an error for both checks to be performed".
  auto automaton =
      CompileAssertion("TESLA_WITHIN(f, previously(check_a(x) == 0 || check_b(x) == 0))");
  ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
  int a = SymbolFor(*automaton, PatternKind::kFunctionReturn, "check_a");
  int b = SymbolFor(*automaton, PatternKind::kFunctionReturn, "check_b");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);

  // a then b then site then cleanup: both branches fired, still accepted.
  StateSet s = automaton->InitialInstanceStates();
  s = automaton->Step(s, static_cast<uint16_t>(a));
  ASSERT_NE(s, 0u);
  s = automaton->Step(s, static_cast<uint16_t>(b));
  ASSERT_NE(s, 0u) << "cross-product must allow the second branch's event";
  s = automaton->Step(s, automaton->site_symbol);
  ASSERT_NE(s, 0u);
  EXPECT_NE(automaton->Step(s, automaton->cleanup_symbol), 0u);

  // Neither branch: the site must not be consumable.
  EXPECT_EQ(automaton->Step(automaton->InitialInstanceStates(), automaton->site_symbol), 0u);
}

TEST(Lower, XorUnionKillsMixedBranches) {
  auto automaton =
      CompileAssertion("TESLA_WITHIN(f, previously(check_a(x) == 0 ^ check_b(x) == 0))");
  ASSERT_TRUE(automaton.ok());
  int a = SymbolFor(*automaton, PatternKind::kFunctionReturn, "check_a");
  int b = SymbolFor(*automaton, PatternKind::kFunctionReturn, "check_b");

  StateSet s = automaton->Step(automaton->InitialInstanceStates(), static_cast<uint16_t>(a));
  ASSERT_NE(s, 0u);
  // The exclusive form has no transition for the other branch.
  EXPECT_EQ(automaton->Step(s, static_cast<uint16_t>(b)), 0u);
  // One branch alone is accepted.
  s = automaton->Step(s, automaton->site_symbol);
  EXPECT_NE(automaton->Step(s, automaton->cleanup_symbol), 0u);
}

TEST(Lower, SequenceOrderEnforced) {
  auto automaton = CompileAssertion("TESLA_WITHIN(f, TSEQUENCE(a(), b()))");
  ASSERT_TRUE(automaton.ok());
  int a = SymbolFor(*automaton, PatternKind::kFunctionCall, "a");
  int b = SymbolFor(*automaton, PatternKind::kFunctionCall, "b");
  StateSet initial = automaton->InitialInstanceStates();
  // b before a: no transition.
  EXPECT_EQ(automaton->Step(initial, static_cast<uint16_t>(b)), 0u);
  StateSet s = automaton->Step(initial, static_cast<uint16_t>(a));
  ASSERT_NE(s, 0u);
  // a twice: no transition.
  EXPECT_EQ(automaton->Step(s, static_cast<uint16_t>(a)), 0u);
  s = automaton->Step(s, static_cast<uint16_t>(b));
  ASSERT_NE(s, 0u);
  EXPECT_NE(automaton->Step(s, automaton->cleanup_symbol), 0u);
}

TEST(Lower, SequenceWithoutSiteRequiresCompletionOnceStarted) {
  auto automaton = CompileAssertion("TESLA_WITHIN(f, TSEQUENCE(a(), b()))");
  ASSERT_TRUE(automaton.ok());
  int a = SymbolFor(*automaton, PatternKind::kFunctionCall, "a");
  StateSet initial = automaton->InitialInstanceStates();
  // Nothing happened: bound may close.
  EXPECT_NE(automaton->Step(initial, automaton->cleanup_symbol), 0u);
  // a alone then close: violation (no transition).
  StateSet s = automaton->Step(initial, static_cast<uint16_t>(a));
  EXPECT_EQ(automaton->Step(s, automaton->cleanup_symbol), 0u);
}

TEST(Lower, OptionalIsSkippable) {
  auto automaton = CompileAssertion("TESLA_WITHIN(f, TSEQUENCE(a(), optional(b()), c()))");
  ASSERT_TRUE(automaton.ok());
  int a = SymbolFor(*automaton, PatternKind::kFunctionCall, "a");
  int b = SymbolFor(*automaton, PatternKind::kFunctionCall, "b");
  int c = SymbolFor(*automaton, PatternKind::kFunctionCall, "c");

  // a, c (skipping b) completes.
  StateSet s = automaton->Step(automaton->InitialInstanceStates(), static_cast<uint16_t>(a));
  StateSet skipped = automaton->Step(s, static_cast<uint16_t>(c));
  ASSERT_NE(skipped, 0u);
  EXPECT_NE(automaton->Step(skipped, automaton->cleanup_symbol), 0u);

  // a, b, c also completes.
  StateSet with_b = automaton->Step(s, static_cast<uint16_t>(b));
  ASSERT_NE(with_b, 0u);
  with_b = automaton->Step(with_b, static_cast<uint16_t>(c));
  ASSERT_NE(with_b, 0u);
  EXPECT_NE(automaton->Step(with_b, automaton->cleanup_symbol), 0u);
}

TEST(Lower, AtLeastZeroAllowsAnyInterleaving) {
  auto automaton =
      CompileAssertion("TESLA_WITHIN(f, previously(ATLEAST(0, push(ANY(ptr)), pop(ANY(ptr)))))");
  ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
  int push = SymbolFor(*automaton, PatternKind::kFunctionCall, "push");
  int pop = SymbolFor(*automaton, PatternKind::kFunctionCall, "pop");

  StateSet s = automaton->InitialInstanceStates();
  // Zero events then site: fine.
  EXPECT_NE(automaton->Step(s, automaton->site_symbol), 0u);
  // Arbitrary interleavings stay alive.
  for (int symbol : {push, pop, pop, push, push}) {
    s = automaton->Step(s, static_cast<uint16_t>(symbol));
    ASSERT_NE(s, 0u);
  }
  s = automaton->Step(s, automaton->site_symbol);
  EXPECT_NE(s, 0u);
}

TEST(Lower, AtLeastNRequiresNEvents) {
  auto automaton = CompileAssertion("TESLA_WITHIN(f, TSEQUENCE(ATLEAST(2, tick()), done()))");
  ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
  int tick = SymbolFor(*automaton, PatternKind::kFunctionCall, "tick");
  int done = SymbolFor(*automaton, PatternKind::kFunctionCall, "done");

  // One tick is not enough for done.
  StateSet s = automaton->Step(automaton->InitialInstanceStates(), static_cast<uint16_t>(tick));
  ASSERT_NE(s, 0u);
  EXPECT_EQ(automaton->Step(s, static_cast<uint16_t>(done)), 0u);

  // Two ticks suffice; three also work.
  s = automaton->Step(s, static_cast<uint16_t>(tick));
  ASSERT_NE(s, 0u);
  StateSet two = automaton->Step(s, static_cast<uint16_t>(done));
  EXPECT_NE(two, 0u);
  StateSet three = automaton->Step(s, static_cast<uint16_t>(tick));
  ASSERT_NE(three, 0u);
  EXPECT_NE(automaton->Step(three, static_cast<uint16_t>(done)), 0u);
}

TEST(Lower, FlagsResolveThroughOptions) {
  automata::LowerOptions options;
  options.flags["IO_NOMACCHECK"] = 0x10;
  auto automaton = CompileAssertion(
      "TESLA_WITHIN(f, previously(called(vn_rdwr(ANY(ptr), flags(IO_NOMACCHECK)))))", options);
  ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
  int vn_rdwr = SymbolFor(*automaton, PatternKind::kFunctionCall, "vn_rdwr");
  ASSERT_GE(vn_rdwr, 0);
  EXPECT_EQ(automaton->alphabet[vn_rdwr].args[1].mask, 0x10u);

  auto unknown =
      CompileAssertion("TESLA_WITHIN(f, previously(called(vn_rdwr(flags(NO_SUCH_FLAG)))))");
  EXPECT_FALSE(unknown.ok());
}

TEST(Lower, ConstantsResolveToLiterals) {
  automata::LowerOptions options;
  options.constants["NEXT_STATE"] = 7;
  auto automaton = CompileAssertion("TESLA_WITHIN(f, s.foo = NEXT_STATE)", options);
  ASSERT_TRUE(automaton.ok());
  // One variable: the structure identity `s`; NEXT_STATE became a literal.
  EXPECT_EQ(automaton->variables.size(), 1u);
  int field = -1;
  for (size_t i = 0; i < automaton->alphabet.size(); i++) {
    if (automaton->alphabet[i].kind == PatternKind::kFieldAssign) {
      field = static_cast<int>(i);
    }
  }
  ASSERT_GE(field, 0);
  EXPECT_EQ(automaton->alphabet[field].assign_value.kind, automata::ArgMatchKind::kLiteral);
  EXPECT_EQ(automaton->alphabet[field].assign_value.literal, 7);
}

TEST(Lower, StrictModifierMarksAutomaton) {
  auto automaton = CompileAssertion("TESLA_WITHIN(f, strict(TSEQUENCE(a(), b())))");
  ASSERT_TRUE(automaton.ok());
  EXPECT_TRUE(automaton->strict);
}

TEST(Lower, CallerCalleeSidesRecorded) {
  auto automaton =
      CompileAssertion("TESLA_WITHIN(f, TSEQUENCE(caller(call(ext)), callee(call(own))))");
  ASSERT_TRUE(automaton.ok());
  int ext = SymbolFor(*automaton, PatternKind::kFunctionCall, "ext");
  int own = SymbolFor(*automaton, PatternKind::kFunctionCall, "own");
  EXPECT_EQ(automaton->alphabet[ext].side, automata::CallSide::kCaller);
  EXPECT_EQ(automaton->alphabet[own].side, automata::CallSide::kCallee);
}

TEST(Determinize, SubsetLabelsMatchPaperStyle) {
  auto automaton = CompileAssertion(
      "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)", {}, "fig9",
      "amd64_syscall");
  ASSERT_TRUE(automaton.ok());
  automata::Dfa dfa = automata::Determinize(*automaton);
  ASSERT_GE(dfa.states.size(), 4u);
  EXPECT_EQ(dfa.StateLabel(0), "NFA:0");
  // Every reachable DFA state must be a nonempty NFA subset.
  for (const auto& state : dfa.states) {
    EXPECT_NE(state.nfa_states, 0u);
  }
}

TEST(Determinize, DfaAndNfaAgreeOnRandomEventStrings) {
  auto automaton = CompileAssertion(
      "TESLA_WITHIN(f, previously(check_a(x) == 0 || TSEQUENCE(check_b(x) == 0, "
      "check_c(x) == 0)))");
  ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
  automata::Dfa dfa = automata::Determinize(*automaton);

  const size_t symbol_count = automaton->alphabet.size();
  uint64_t rng = 12345;
  auto next = [&rng, symbol_count] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint16_t>((rng >> 33) % symbol_count);
  };

  for (int trial = 0; trial < 200; trial++) {
    StateSet nfa_state = StateBit(automaton->initial_state);
    uint32_t dfa_state = 0;
    bool dfa_dead = false;
    for (int step = 0; step < 12; step++) {
      uint16_t symbol = next();
      StateSet nfa_next = automaton->Step(nfa_state, symbol);
      uint32_t dfa_next = dfa_dead ? automata::Dfa::kNoTarget : dfa.Step(dfa_state, symbol);
      EXPECT_EQ(nfa_next == 0, dfa_next == automata::Dfa::kNoTarget)
          << "trial " << trial << " step " << step;
      if (nfa_next == 0) {
        break;
      }
      EXPECT_EQ(dfa.states[dfa_next].nfa_states, nfa_next);
      nfa_state = nfa_next;
      dfa_state = dfa_next;
    }
  }
}

TEST(Manifest, SerialiseRoundTrip) {
  automata::LowerOptions options;
  options.flags["IO_NOMACCHECK"] = 0x10;
  automata::Manifest manifest;
  const char* sources[] = {
      "TESLA_WITHIN(f, previously(check(ANY(ptr), o, op) == 0))",
      "TESLA_GLOBAL(call(g), returnfrom(g), eventually(audit(x) == 1))",
      "TESLA_WITHIN(h, s.state = 3)",
      "TESLA_WITHIN(k, previously(called(vn_rdwr(flags(IO_NOMACCHECK)))))",
  };
  for (const char* source : sources) {
    auto automaton = CompileAssertion(source, options);
    ASSERT_TRUE(automaton.ok()) << source;
    manifest.Add(std::move(automaton.value()));
  }

  std::string text = manifest.Serialize();
  auto parsed = automata::Manifest::Deserialize(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed->automata.size(), manifest.automata.size());
  for (size_t i = 0; i < manifest.automata.size(); i++) {
    const Automaton& a = manifest.automata[i];
    const Automaton& b = parsed->automata[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.context, b.context);
    EXPECT_EQ(a.state_count, b.state_count);
    EXPECT_EQ(a.accept_state, b.accept_state);
    EXPECT_EQ(a.alphabet, b.alphabet);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.variables, b.variables);
    EXPECT_EQ(a.has_site, b.has_site);
  }
  // Serialisation is stable.
  EXPECT_EQ(parsed->Serialize(), text);
}

TEST(Manifest, RequirementsAggregation) {
  automata::Manifest manifest;
  auto first = CompileAssertion("TESLA_WITHIN(f, previously(check(x) == 0))", {}, "one");
  auto second = CompileAssertion("TESLA_WITHIN(g, TSEQUENCE(s.state = 1, caller(call(ext))))",
                                 {}, "two");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  manifest.Add(std::move(first.value()));
  manifest.Add(std::move(second.value()));

  auto requirements = manifest.ComputeRequirements();
  EXPECT_TRUE(requirements.call_hooks.count(GlobalInterner().Lookup("f")) != 0);
  EXPECT_TRUE(requirements.return_hooks.count(GlobalInterner().Lookup("check")) != 0);
  EXPECT_TRUE(requirements.field_hooks.count(GlobalInterner().Lookup("state")) != 0);
  EXPECT_TRUE(requirements.caller_side.count(GlobalInterner().Lookup("ext")) != 0);
  EXPECT_TRUE(requirements.site_hooks.count("one") != 0);
}

TEST(Dot, RendersWeightedGraph) {
  auto automaton = CompileAssertion(
      "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)", {}, "fig9",
      "amd64_syscall");
  ASSERT_TRUE(automaton.ok());
  automata::Dfa dfa = automata::Determinize(*automaton);
  automata::TransitionWeights weights;
  weights[{0, automaton->init_symbol}] = 1000;
  std::string dot = automata::ToDot(*automaton, dfa, &weights);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("(1000)"), std::string::npos);
  EXPECT_NE(dot.find("NFA:0"), std::string::npos);
  EXPECT_NE(dot.find("penwidth"), std::string::npos);

  std::string nfa_dot = automata::ToDotNfa(*automaton);
  EXPECT_NE(nfa_dot.find("doublecircle"), std::string::npos);
}

TEST(Lower, StateLimitEnforced) {
  // A deep OR of sequences explodes the product; expect a graceful error
  // rather than an oversized automaton.
  std::string expr = "previously(";
  for (int i = 0; i < 7; i++) {
    if (i > 0) expr += " || ";
    expr += "TSEQUENCE(a" + std::to_string(i) + "(), b" + std::to_string(i) + "(), c" +
            std::to_string(i) + "())";
  }
  expr += ")";
  auto automaton = CompileAssertion("TESLA_WITHIN(f, " + expr + ")");
  EXPECT_FALSE(automaton.ok());
}

}  // namespace
}  // namespace tesla
