// Integration tests: multi-unit programs through the full pipeline, manifest
// interchange through the filesystem, and cross-simulator scenarios.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "automata/manifest.h"
#include "cfront/cfront.h"
#include "instr/bridge.h"
#include "instr/instrument.h"
#include "ir/interp.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "objsim/appkit.h"
#include "objsim/trace.h"
#include "runtime/runtime.h"
#include "sslsim/fetch.h"

namespace tesla {
namespace {

runtime::RuntimeOptions TestOptions() {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  return options;
}

// ---------------------------------------------------------------------------
// Full pipeline over a 3-unit program with loops and struct state.
// ---------------------------------------------------------------------------

struct Program {
  explicit Program(std::vector<std::pair<const char*, const char*>> units) {
    cfront::Compiler compiler;
    for (const auto& [name, source] : units) {
      auto status = compiler.AddUnit(source, name);
      EXPECT_TRUE(status.ok()) << name << ": " << status.error().ToString();
    }
    manifest = compiler.manifest();
    auto result = instr::Instrument(std::move(compiler.module()), manifest,
                                    std::vector<cfront::SiteInfo>(compiler.sites()));
    EXPECT_TRUE(result.ok()) << result.error().ToString();
    program = std::move(result.value());
  }

  runtime::RuntimeStats Run(const std::string& entry, std::vector<int64_t> args,
                            int64_t expected) {
    runtime::Runtime rt(TestOptions());
    EXPECT_TRUE(rt.Register(manifest).ok());
    runtime::ThreadContext ctx(rt);
    ir::Interpreter interp(program.module);
    instr::RuntimeBridge bridge(program, rt, ctx);
    interp.SetDispatcher(&bridge);
    auto result = interp.Call(entry, std::move(args));
    EXPECT_TRUE(result.ok()) << result.error().ToString();
    if (result.ok()) {
      EXPECT_EQ(*result, expected);
    }
    return rt.stats();
  }

  automata::Manifest manifest;
  instr::InstrumentedProgram program;
};

TEST(Integration, LoopedRequestsCloneAndCheckPerIteration) {
  // Every loop iteration opens its own bound; TESLA must track each one
  // independently (instances are expunged at every bound exit).
  const char* service =
      "int acl_check(int object) { if (object % 3 == 0) { return 1; } return 0; }\n"
      "int serve(int object, int skip) {\n"
      "  int granted = 0;\n"
      "  if (!skip) { granted = acl_check(object); }\n"
      "  if (granted != 0) { return -1; }\n"
      "  TESLA_WITHIN(serve, previously(acl_check(object) == 0));\n"
      "  return object;\n"
      "}";
  const char* driver =
      "int drive(int n, int skip) {\n"
      "  int i = 1;\n"
      "  int total = 0;\n"
      "  while (i <= n) {\n"
      "    if (i % 3 != 0) { total = total + serve(i, skip); }\n"
      "    i = i + 1;\n"
      "  }\n"
      "  return total;\n"
      "}";
  Program program({{"service.c", service}, {"driver.c", driver}});

  // 1..10 excluding multiples of 3: 1+2+4+5+7+8+10 = 37.
  auto clean = program.Run("drive", {10, 0}, 37);
  EXPECT_EQ(clean.violations, 0u);
  EXPECT_GE(clean.bound_entries, 7u);

  auto buggy = program.Run("drive", {10, 1}, 37);
  EXPECT_EQ(buggy.violations, 7u) << "every unguarded request must be caught";
}

TEST(Integration, StateMachineFieldAssertion) {
  // A connection object must go CONNECTING(1) before ESTABLISHED(2).
  const char* source =
      "struct conn { int state; };\n"
      "int establish(int skip_connecting) {\n"
      "  struct conn *c = alloc(conn);\n"
      "  if (!skip_connecting) { c->state = 1; }\n"
      "  c->state = 2;\n"
      "  TESLA_WITHIN(establish, previously(c.state = 1));\n"
      "  return c->state;\n"
      "}";
  Program program(std::vector<std::pair<const char*, const char*>>{{"conn.c", source}});
  EXPECT_EQ(program.Run("establish", {0}, 2).violations, 0u);
  EXPECT_EQ(program.Run("establish", {1}, 2).violations, 1u);
}

TEST(Integration, ManifestRoundTripsThroughDisk) {
  // Unit A's analyser output written to a .tesla file, re-read and used to
  // instrument unit B's module — the cross-TU workflow of §4.1.
  cfront::Compiler producer;
  ASSERT_TRUE(producer
                  .AddUnit("int client(int sig) {\n"
                           "  int v = verify(sig); v = v;\n"
                           "  TESLA_WITHIN(client, previously(verify(ANY(int)) == 1));\n"
                           "  return 0;\n"
                           "}",
                           "client.c")
                  .ok());

  const std::string path = ::testing::TempDir() + "/integration.tesla";
  {
    std::ofstream out(path);
    out << producer.manifest().Serialize();
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto reloaded = automata::Manifest::Deserialize(buffer.str());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().ToString();

  auto instrumented = instr::Instrument(std::move(producer.module()), *reloaded,
                                        std::vector<cfront::SiteInfo>(producer.sites()));
  ASSERT_TRUE(instrumented.ok());

  runtime::Runtime rt(TestOptions());
  ASSERT_TRUE(rt.Register(*reloaded).ok());
  runtime::ThreadContext ctx(rt);
  ir::Interpreter interp(instrumented->module);
  instr::RuntimeBridge bridge(*instrumented, rt, ctx);
  interp.SetDispatcher(&bridge);
  interp.BindHost("verify", [](std::span<const int64_t> args) {
    return args.empty() || args[0] != 13 ? 1 : -1;
  });
  ASSERT_TRUE(interp.Call("client", {7}).ok());
  EXPECT_EQ(rt.stats().violations, 0u);
  ASSERT_TRUE(interp.Call("client", {13}).ok());
  EXPECT_EQ(rt.stats().violations, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// One runtime supervising several simulators at once (assertions can span
// libraries — §3.5.1's core claim).
// ---------------------------------------------------------------------------

TEST(Integration, SingleRuntimeSupervisesKernelAndSsl) {
  runtime::Runtime rt(TestOptions());
  automata::Manifest combined;
  auto kernel_manifest = kernelsim::KernelAssertions(kernelsim::kSetMacSocket);
  ASSERT_TRUE(kernel_manifest.ok());
  combined.Merge(std::move(kernel_manifest.value()));
  auto ssl_manifest = sslsim::FetchAssertions();
  ASSERT_TRUE(ssl_manifest.ok());
  combined.Merge(std::move(ssl_manifest.value()));
  ASSERT_TRUE(rt.Register(combined).ok());

  // Kernel side: clean socket traffic.
  kernelsim::KernelConfig config;
  config.tesla = &rt;
  kernelsim::Kernel kernel(config);
  kernelsim::Proc* proc = kernel.NewProcess(0);
  kernelsim::KThread td = kernel.NewThread(proc);
  kernelsim::OltpTransactions(kernel, td, 25);
  EXPECT_EQ(rt.stats().violations, 0u);

  // SSL side, same runtime: the malicious server trips fig. 6.
  runtime::ThreadContext ssl_ctx(rt);
  sslsim::SslInstrumentation instr{&rt, &ssl_ctx};
  sslsim::FetchClient client(instr, sslsim::SslConfig{});
  sslsim::Server malicious = sslsim::Server::Malicious(5, "evil");
  client.FetchDocument(malicious);
  EXPECT_EQ(rt.stats().violations, 1u);
}

TEST(Integration, GuiSessionEndToEndWithBugToggled) {
  for (bool bug : {false, true}) {
    runtime::Runtime rt(TestOptions());
    runtime::ThreadContext ctx(rt);
    objsim::ObjcRuntime objc(objsim::TraceMode::kTesla);
    objsim::AppKitConfig config;
    config.cursor_unbalanced_bug = bug;
    objsim::AppKit app(objc, config);
    auto tesla = objsim::GuiTesla::Install(rt, ctx, app);
    ASSERT_TRUE(tesla.ok());
    (*tesla)->EnableTraceRecording(true);

    std::vector<objsim::UiEvent> sweep;
    for (int i = 0; i < 24; i++) {
      sweep.push_back({objsim::UiEvent::Kind::kMouseMove, (i % 5) * 100 + 50, 50});
    }
    for (int frame = 0; frame < 4; frame++) {
      app.RunLoopIteration(std::span<const objsim::UiEvent>(sweep.data(), sweep.size()));
    }
    // The tracing automaton never fires violations either way...
    EXPECT_EQ(rt.stats().violations, 0u) << "bug=" << bug;
    // ...but the trace separates the healthy and buggy builds.
    int64_t imbalance = 0;
    for (const auto& [iteration, delta] : (*tesla)->CursorImbalanceByIteration()) {
      imbalance += delta;
    }
    if (bug) {
      EXPECT_GT(imbalance, 1) << "bug=" << bug;
    } else {
      EXPECT_LE(imbalance, 1) << "bug=" << bug;
    }
  }
}

TEST(Integration, KernelWorkloadSweepAcrossAssertionSets) {
  // Every assertion-set combination stays violation-free on the clean kernel.
  const uint32_t sets[] = {
      kernelsim::kSetMacFs,
      kernelsim::kSetMacSocket,
      kernelsim::kSetMacProc,
      kernelsim::kSetMacFs | kernelsim::kSetMacSocket,
      kernelsim::kSetMac,
      kernelsim::kSetProc,
      kernelsim::kSetAll,
  };
  for (uint32_t set : sets) {
    runtime::Runtime rt(TestOptions());
    auto manifest = kernelsim::KernelAssertions(set);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(rt.Register(manifest.value()).ok());
    kernelsim::KernelConfig config;
    config.tesla = &rt;
    kernelsim::Kernel kernel(config);
    kernelsim::Proc* proc = kernel.NewProcess(0);
    kernelsim::KThread td = kernel.NewThread(proc);

    kernelsim::OpenCloseLoop(kernel, td, 25);
    kernelsim::OltpTransactions(kernel, td, 25);
    kernelsim::BuildCompile(kernel, td, 5, 1);
    kernel.SysSetuid(td, 2);
    kernel.SysExecve(td, "/bin/sh");
    EXPECT_EQ(rt.stats().violations, 0u) << "set mask " << set;
  }
}

TEST(Integration, InstrumentedProgramStillComputesCorrectly) {
  // Instrumentation must be semantically transparent: fibonacci through an
  // instrumented module returns the same values as uninstrumented.
  const char* source =
      "int fib(int n) {\n"
      "  TESLA_WITHIN(fib, optional(called(fib)));\n"
      "  if (n < 2) { return n; }\n"
      "  return fib(n - 1) + fib(n - 2);\n"
      "}";
  Program program(std::vector<std::pair<const char*, const char*>>{{"fib.c", source}});
  auto stats = program.Run("fib", {12}, 144);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_GT(stats.events, 100u) << "recursion must generate plenty of events";
}

}  // namespace
}  // namespace tesla
