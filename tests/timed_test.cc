// Timed-assertion coverage (within_ms / rate): grammar round trips, the
// hierarchical deadline wheel, runtime arming/expiry/disarm semantics, the
// satellite edge cases (boundary-tick expiry, backwards clocks, same-batch
// arm-and-satisfy), negative-latency accounting through both clock-reading
// paths, and the sync / async-queue / multi-consumer / replay differential.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "metrics/metrics.h"
#include "queue/queue.h"
#include "runtime/deadline.h"
#include "runtime/runtime.h"
#include "trace/replay.h"

namespace tesla {
namespace {

using automata::CompileAssertion;
using automata::TimedSpec;
using runtime::DeadlineWheel;
using runtime::Event;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::ThreadContext;
using runtime::ViolationKind;

Symbol S(const char* name) { return InternString(name); }

constexpr uint64_t kMs = 1'000'000;
constexpr uint64_t kBoot = 1'000'000'000;  // virtual boot time, away from ts==0

// A 10 ms pat-after-arm deadline inside the svc bound. Neither clause is an
// ordering property, so only the timed machinery can fault these runs.
constexpr const char* kWithinSource =
    "TESLA_WITHIN(svc, within_ms(10, TSEQUENCE(called(arm), called(pat))))";
// Rate tests drive tick counts with a margin around the limit, so they stay
// agnostic about whether the bound-entry event itself lands in the window.
constexpr const char* kRateSource =
    "TESLA_WITHIN(svc, rate(3, per_ms(10), ATLEAST(1, called(tick))))";

RuntimeOptions TimedOptions(uint64_t* clock) {
  RuntimeOptions options;
  options.fail_stop = false;
  // The flight recorder feeds violation_log(); tests assert on the log.
  options.trace_mode = trace::TraceMode::kFlightRecorder;
  options.now_ns = [clock] { return *clock; };
  return options;
}

struct Fixture {
  explicit Fixture(const std::string& source, RuntimeOptions options) : rt(options) {
    auto automaton = CompileAssertion(source, {}, "timed");
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    automata::Manifest manifest;
    manifest.Add(std::move(automaton.value()));
    EXPECT_TRUE(rt.Register(manifest).ok());
  }
  Runtime rt;
};

uint64_t CountKind(const std::vector<std::pair<ViolationKind, std::string>>& log,
                   ViolationKind kind) {
  uint64_t n = 0;
  for (const auto& [k, detail] : log) {
    n += k == kind ? 1 : 0;
  }
  return n;
}

uint64_t CountKind(const Runtime& rt, ViolationKind kind) {
  return CountKind(rt.violation_log(), kind);
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp") + "/" + name + "." +
         std::to_string(::getpid());
}

// --- grammar / lowering round trips ---

TEST(TimedParser, WithinLowersToSpec) {
  auto automaton = CompileAssertion(kWithinSource, {}, "t");
  ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
  ASSERT_EQ(automaton.value().timed.size(), 1u);
  const TimedSpec& spec = automaton.value().timed[0];
  EXPECT_EQ(spec.kind, TimedSpec::kWithin);
  EXPECT_EQ(spec.bound_ns, 10 * kMs);
  EXPECT_NE(spec.armed_mask, 0u);
}

TEST(TimedParser, RateLowersToSpec) {
  auto automaton = CompileAssertion(kRateSource, {}, "t");
  ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
  ASSERT_EQ(automaton.value().timed.size(), 1u);
  const TimedSpec& spec = automaton.value().timed[0];
  EXPECT_EQ(spec.kind, TimedSpec::kRate);
  EXPECT_EQ(spec.bound_ns, 10 * kMs);
  EXPECT_EQ(spec.limit, 3u);
  EXPECT_FALSE(spec.symbols.empty());
}

TEST(TimedParser, ManifestRoundTripPreservesTimedSpecs) {
  automata::Manifest manifest;
  for (const char* source : {kWithinSource, kRateSource}) {
    auto automaton = CompileAssertion(source, {}, source);
    ASSERT_TRUE(automaton.ok()) << automaton.error().ToString();
    manifest.Add(std::move(automaton.value()));
  }
  auto parsed = automata::Manifest::Deserialize(manifest.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed.value().automata.size(), manifest.automata.size());
  for (size_t i = 0; i < manifest.automata.size(); i++) {
    // Replay rebuilds deadlines from these lines; every field must survive.
    EXPECT_EQ(parsed.value().automata[i].timed, manifest.automata[i].timed) << i;
  }
}

// --- the deadline wheel ---

TEST(DeadlineWheelTest, FiresStrictlyAfterDeadline) {
  DeadlineWheel wheel(0);
  wheel.Arm({5 * kMs, 1, 0, 7});
  std::vector<DeadlineWheel::Entry> fired;
  // An event at exactly ts == deadline can still satisfy its region.
  wheel.Advance(5 * kMs, fired);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.live(), 1u);
  wheel.Advance(5 * kMs + 1, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].deadline_ns, 5 * kMs);
  EXPECT_EQ(fired[0].class_id, 1u);
  EXPECT_EQ(fired[0].serial, 7u);
  EXPECT_TRUE(wheel.empty());
}

TEST(DeadlineWheelTest, CascadesAcrossLevelBoundary) {
  DeadlineWheel wheel(0);
  // Tick 100 sits in level 1 from tick 0; the wheel must cascade it down as
  // the cursor crosses the 64-tick boundary, not lose or double-fire it.
  const uint64_t deadline = 100ull << DeadlineWheel::kTickBits;
  wheel.Arm({deadline, 2, 0, 1});
  std::vector<DeadlineWheel::Entry> fired;
  wheel.Advance(64ull << DeadlineWheel::kTickBits, fired);
  EXPECT_TRUE(fired.empty());
  wheel.Advance(130ull << DeadlineWheel::kTickBits, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].deadline_ns, deadline);
  EXPECT_TRUE(wheel.empty());
}

TEST(DeadlineWheelTest, RebuildsOnLargeClockJump) {
  DeadlineWheel wheel(0);
  const uint64_t deadline = 200ull << DeadlineWheel::kTickBits;
  wheel.Arm({deadline, 3, 0, 1});
  std::vector<DeadlineWheel::Entry> fired;
  // One jump far past the incremental-walk bound (2 * 64 ticks): the wheel
  // rebuilds around the new cursor and still fires exactly once.
  wheel.Advance(400ull << DeadlineWheel::kTickBits, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].deadline_ns, deadline);
  EXPECT_TRUE(wheel.empty());
}

TEST(DeadlineWheelTest, OverflowEntriesSurviveAndFire) {
  DeadlineWheel wheel(0);
  const uint64_t deadline = 1ull << 50;  // past every level: overflow list
  wheel.Arm({deadline, 4, 0, 1});
  std::vector<DeadlineWheel::Entry> fired;
  wheel.Advance(10 * kMs, fired);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.live(), 1u);
  wheel.Advance(deadline + 1, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].class_id, 4u);
  EXPECT_TRUE(wheel.empty());
}

// --- within_ms runtime semantics ---

TEST(TimedRuntime, RegionCompletedInTimeIsSilent) {
  uint64_t clock = kBoot;
  Fixture f(kWithinSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  f.rt.OnFunctionCall(ctx, S("arm"), {});
  clock += 5 * kMs;
  f.rt.OnFunctionCall(ctx, S("pat"), {});
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
  EXPECT_EQ(f.rt.stats().deadline_arms, 1u);
  EXPECT_EQ(f.rt.stats().deadline_expiries, 0u);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(TimedRuntime, LateRegionEventFiresExpiry) {
  uint64_t clock = kBoot;
  Fixture f(kWithinSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  f.rt.OnFunctionCall(ctx, S("arm"), {});
  clock += 20 * kMs;  // stall past the 10 ms SLO
  f.rt.OnFunctionCall(ctx, S("pat"), {});  // the late event itself ticks the wheel
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
  EXPECT_EQ(f.rt.stats().deadline_expiries, 1u);
  EXPECT_EQ(CountKind(f.rt, ViolationKind::kDeadlineExpired), 1u);
}

TEST(TimedRuntime, ExpiryFiresOnBoundExitWithoutRegionEvent) {
  // No timer thread: when the region never completes, the bound-exit event
  // is the next clock observation and must surface the expiry itself.
  uint64_t clock = kBoot;
  Fixture f(kWithinSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  f.rt.OnFunctionCall(ctx, S("arm"), {});
  clock += 20 * kMs;
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);  // pat never happened
  EXPECT_EQ(f.rt.stats().deadline_expiries, 1u);
  EXPECT_EQ(CountKind(f.rt, ViolationKind::kDeadlineExpired), 1u);
}

TEST(TimedRuntime, ExpiryExactlyAtBoundaryStillSatisfies) {
  // Satellite edge case: deadline semantics are strictly-after. An event at
  // ts == deadline completes the region; one nanosecond later expires it.
  for (uint64_t slack : {uint64_t{0}, uint64_t{1}}) {
    uint64_t clock = kBoot;
    Fixture f(kWithinSource, TimedOptions(&clock));
    ThreadContext ctx(f.rt);
    f.rt.OnFunctionCall(ctx, S("svc"), {});
    f.rt.OnFunctionCall(ctx, S("arm"), {});
    clock += 10 * kMs + slack;
    f.rt.OnFunctionCall(ctx, S("pat"), {});
    f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
    EXPECT_EQ(f.rt.stats().deadline_expiries, slack) << "slack=" << slack;
    EXPECT_EQ(CountKind(f.rt, ViolationKind::kDeadlineExpired), slack) << "slack=" << slack;
  }
}

TEST(TimedRuntime, BackwardsClockClampsAndCountsOnce) {
  // Satellite edge case: a clock stepped backwards mid-window must be
  // counted (once per event) and clamped — never underflow a window or
  // fire a deadline armed "in the past".
  uint64_t clock = kBoot;
  Fixture f(kWithinSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  f.rt.OnFunctionCall(ctx, S("arm"), {});
  clock -= 5 * kMs;  // the pat event's stamp regresses
  f.rt.OnFunctionCall(ctx, S("pat"), {});
  EXPECT_EQ(f.rt.stats().clock_regressions, 1u);
  clock = kBoot + 1 * kMs;  // clock recovers
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
  EXPECT_EQ(f.rt.stats().clock_regressions, 1u);
  EXPECT_EQ(f.rt.stats().deadline_expiries, 0u);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(TimedRuntime, ArmedAndSatisfiedInOneBatch) {
  // Satellite edge case: a timed clause armed and satisfied by events in
  // the same OnEvents() batch must come out clean — no spurious expiry.
  uint64_t clock = kBoot;
  Fixture f(kWithinSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  std::vector<Event> batch = {
      Event::Call(S("svc"), {}),
      Event::Call(S("arm"), {}),
      Event::Call(S("pat"), {}),
      Event::Return(S("svc"), {}, 0),
  };
  for (Event& event : batch) {
    event.ts_ns = kBoot;
  }
  f.rt.OnEvents(ctx, batch);
  EXPECT_EQ(f.rt.stats().deadline_arms, 1u);
  EXPECT_EQ(f.rt.stats().deadline_expiries, 0u);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(TimedRuntime, CompletedRegionCancelsPendingDeadline) {
  // Lazy cancellation end to end: the wheel entry of a region that finished
  // in time must not fire when the clock later sails far past its deadline.
  uint64_t clock = kBoot;
  Fixture f(kWithinSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  f.rt.OnFunctionCall(ctx, S("arm"), {});
  clock += 1 * kMs;
  f.rt.OnFunctionCall(ctx, S("pat"), {});  // region done well inside the SLO
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
  clock += 3'600'000 * kMs;  // an hour later, the stale entry pops
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
  EXPECT_EQ(f.rt.stats().deadline_arms, 1u);
  EXPECT_EQ(f.rt.stats().deadline_expiries, 0u);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

// --- rate() runtime semantics ---

void DriveTicks(Runtime& rt, ThreadContext& ctx, int n) {
  for (int i = 0; i < n; i++) {
    rt.OnFunctionCall(ctx, S("tick"), {});
  }
}

TEST(TimedRuntime, RateUnderLimitIsSilent) {
  uint64_t clock = kBoot;
  Fixture f(kRateSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  DriveTicks(f.rt, ctx, 2);  // margin below limit=3 even if entry counts
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
  EXPECT_EQ(f.rt.stats().rate_violations, 0u);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(TimedRuntime, RateExceededReportsOncePerWindow) {
  uint64_t clock = kBoot;
  Fixture f(kRateSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  DriveTicks(f.rt, ctx, 8);  // well past limit=3, all inside one 10 ms window
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
  EXPECT_EQ(f.rt.stats().rate_violations, 1u);
  EXPECT_EQ(CountKind(f.rt, ViolationKind::kRateExceeded), 1u);
}

TEST(TimedRuntime, RateWindowTumbles) {
  // The same total count spread across two windows is within the SLO.
  uint64_t clock = kBoot;
  Fixture f(kRateSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  DriveTicks(f.rt, ctx, 2);
  clock += 15 * kMs;  // a quiet gap: the window tumbles
  DriveTicks(f.rt, ctx, 2);
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
  EXPECT_EQ(f.rt.stats().rate_violations, 0u);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(TimedRuntime, RateBurstAfterTumbleStillTrips) {
  uint64_t clock = kBoot;
  Fixture f(kRateSource, TimedOptions(&clock));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("svc"), {});
  DriveTicks(f.rt, ctx, 2);  // clean first window
  clock += 15 * kMs;
  DriveTicks(f.rt, ctx, 8);  // burst in the second window
  f.rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
  EXPECT_EQ(f.rt.stats().rate_violations, 1u);
}

// --- negative-latency accounting (both clock-reading paths) ---

// An untimed assertion whose alphabet gives every driven event a dispatch,
// so both latency brackets (metrics kFull and the profile sampler) run.
constexpr const char* kUntimedSource =
    "TESLA_WITHIN(svc, previously(ATLEAST(1, tick())))";

void DriveUntimed(Runtime& rt, int ticks) {
  ThreadContext ctx(rt);
  rt.OnFunctionCall(ctx, S("svc"), {});
  DriveTicks(rt, ctx, ticks);
  rt.OnFunctionReturn(ctx, S("svc"), {}, 0);
}

TEST(TimedRuntime, NegativeLatencyCountedInMetricsBracket) {
  // A clock that steps backwards between the two reads of the kFull
  // dispatch bracket: the sample clamps to bucket 0 and the regression is
  // counted, never silently swallowed.
  uint64_t t = kBoot;
  RuntimeOptions options;
  options.fail_stop = false;
  options.metrics_mode = metrics::MetricsMode::kFull;
  options.now_ns = [&t] { return t -= 1000; };
  Fixture f(kUntimedSource, options);
  DriveUntimed(f.rt, 8);
  EXPECT_GE(f.rt.stats().negative_latencies, 1u);
}

TEST(TimedRuntime, NegativeLatencyCountedInProfileSampler) {
  // The same property through the 1-in-64 profile latency sampler — the
  // path that used to clamp without counting.
  uint64_t t = kBoot;
  RuntimeOptions options;
  options.fail_stop = false;
  options.profile = true;
  options.now_ns = [&t] { return t -= 1000; };
  Fixture f(kUntimedSource, options);
  DriveUntimed(f.rt, 256);  // enough dispatches for several 1-in-64 samples
  EXPECT_GE(f.rt.stats().negative_latencies, 1u);
}

TEST(TimedRuntime, ForwardClockCountsNoNegativeLatencies) {
  uint64_t t = kBoot;
  RuntimeOptions options;
  options.fail_stop = false;
  options.metrics_mode = metrics::MetricsMode::kFull;
  options.profile = true;
  options.now_ns = [&t] { return t += 1000; };
  Fixture f(kUntimedSource, options);
  DriveUntimed(f.rt, 256);
  EXPECT_EQ(f.rt.stats().negative_latencies, 0u);
}

// --- ingestion-path differential ---

// A deterministic pre-stamped schedule: pass 1 stalls past the deadline
// (one expiry), pass 2 is clean, pass 3 bursts ticks past the rate limit
// (one rate violation). Every ingestion path must reach these verdicts.
std::vector<Event> TimedSchedule() {
  std::vector<Event> events;
  uint64_t t = kBoot;
  auto at = [&events](uint64_t ts, Event event) {
    event.ts_ns = ts;
    events.push_back(event);
  };
  // Pass 1: arm, stall 20 ms, pat too late.
  at(t, Event::Call(S("svc"), {}));
  at(t, Event::Call(S("arm"), {}));
  at(t + 20 * kMs, Event::Call(S("pat"), {}));
  at(t + 20 * kMs, Event::Return(S("svc"), {}, 0));
  // Pass 2: clean.
  t += 50 * kMs;
  at(t, Event::Call(S("svc"), {}));
  at(t, Event::Call(S("arm"), {}));
  at(t + 5 * kMs, Event::Call(S("pat"), {}));
  at(t + 5 * kMs, Event::Return(S("svc"), {}, 0));
  // Pass 3: tick burst inside one 10 ms window.
  t += 50 * kMs;
  at(t, Event::Call(S("svc"), {}));
  for (int i = 0; i < 8; i++) {
    at(t + static_cast<uint64_t>(i) * kMs / 2, Event::Call(S("tick"), {}));
  }
  at(t + 5 * kMs, Event::Return(S("svc"), {}, 0));
  return events;
}

automata::Manifest TimedManifest() {
  automata::Manifest manifest;
  for (const char* source : {kWithinSource, kRateSource}) {
    auto automaton = CompileAssertion(source, {}, source);
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    manifest.Add(std::move(automaton.value()));
  }
  return manifest;
}

struct DifferentialRun {
  runtime::RuntimeStats stats;
  std::vector<std::pair<ViolationKind, std::string>> violations;
};

DifferentialRun RunSync(const std::vector<Event>& events, const std::string& capture_path) {
  RuntimeOptions options;
  options.fail_stop = false;
  if (!capture_path.empty()) {
    options.trace_mode = trace::TraceMode::kFullCapture;
  }
  Runtime rt(options);
  EXPECT_TRUE(rt.Register(TimedManifest()).ok());
  ThreadContext ctx(rt);
  rt.OnEvents(ctx, events);
  if (!capture_path.empty()) {
    EXPECT_TRUE(trace::WriteCapture(capture_path, "timed-differential", rt).ok());
  }
  return {rt.stats(), rt.violation_log()};
}

DifferentialRun RunQueued(const std::vector<Event>& events, size_t consumers) {
  RuntimeOptions options;
  options.fail_stop = false;
  options.trace_mode = trace::TraceMode::kFlightRecorder;
  Runtime rt(options);
  EXPECT_TRUE(rt.Register(TimedManifest()).ok());
  queue::QueueOptions qopts;
  qopts.ring_capacity = 256;
  qopts.batch_events = 4;  // small batches: events cross batch boundaries
  qopts.consumers = consumers;
  queue::EventQueue q(rt, qopts);
  q.Start();
  ThreadContext ctx(rt);
  for (const Event& event : events) {
    EXPECT_TRUE(q.Enqueue(ctx, event));  // pre-stamped ts rides the ring
  }
  q.Stop();
  return {rt.stats(), rt.violation_log()};
}

void ExpectTimedVerdictsEqual(const DifferentialRun& a, const DifferentialRun& b,
                              const char* label) {
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.stats.deadline_arms, b.stats.deadline_arms) << label;
  EXPECT_EQ(a.stats.deadline_expiries, b.stats.deadline_expiries) << label;
  EXPECT_EQ(a.stats.rate_violations, b.stats.rate_violations) << label;
  EXPECT_EQ(a.stats.clock_regressions, b.stats.clock_regressions) << label;
  EXPECT_EQ(a.stats.violations, b.stats.violations) << label;
  EXPECT_EQ(a.stats.events, b.stats.events) << label;
}

TEST(TimedDifferential, VerdictsIdenticalAcrossIngestionPaths) {
  const std::vector<Event> events = TimedSchedule();
  const std::string capture = TempPath("tesla_timed_differential.trace");

  const DifferentialRun sync = RunSync(events, capture);
  EXPECT_EQ(sync.stats.deadline_expiries, 1u);
  EXPECT_EQ(sync.stats.rate_violations, 1u);
  EXPECT_EQ(CountKind(sync.violations, ViolationKind::kDeadlineExpired), 1u);
  EXPECT_EQ(CountKind(sync.violations, ViolationKind::kRateExceeded), 1u);

  ExpectTimedVerdictsEqual(sync, RunQueued(events, 1), "async-queue");
  ExpectTimedVerdictsEqual(sync, RunQueued(events, 4), "4-consumer");

  // Replay: the capture's embedded manifest and recorded timestamps must
  // rebuild the exact verdicts — stats and violation sequence both match.
  auto replay = trace::ReplayFile(capture);
  ASSERT_TRUE(replay.ok()) << replay.error().ToString();
  EXPECT_TRUE(replay.value().matched) << replay.value().divergence;
  EXPECT_EQ(replay.value().violations, sync.violations);
  EXPECT_EQ(replay.value().stats.deadline_expiries, 1u);
  EXPECT_EQ(replay.value().stats.rate_violations, 1u);
  std::remove(capture.c_str());
}

}  // namespace
}  // namespace tesla
