// Fleet aggregation (ipc/merge.h): stats summing, the violation census,
// coverage OR / counter sums across shards, grid-mismatch rejection,
// input-order determinism of the rendered reports, and the error-code
// contract the CLI's exit codes build on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ipc/merge.h"
#include "metrics/metrics.h"
#include "metrics/snapshot.h"
#include "trace/format.h"

namespace tesla {
namespace {

using ipc::FleetReport;
using ipc::MergeCaptureFiles;
using ipc::MergeCaptures;
using runtime::ViolationKind;
using trace::TraceFile;

// A capture whose every stats field is `base + field index`, with `records`
// empty records and the given violations — enough structure to check the
// merge arithmetic without running a workload.
TraceFile Shard(uint64_t base, size_t records,
                std::vector<std::pair<ViolationKind, std::string>> violations) {
  TraceFile file;
  file.version = trace::kTraceVersion;
  file.origin = "test:merge";
  file.summary.dropped = base;
  uint64_t value = base;
  for (const trace::StatsField& field : trace::kStatsFields) {
    file.summary.stats.*field.field = value++;
  }
  file.summary.violations = std::move(violations);
  file.records.resize(records);
  return file;
}

metrics::ClassSnapshot Class(const std::string& name, uint64_t counter0,
                             std::vector<bool> fired) {
  metrics::ClassSnapshot cls;
  cls.name = name;
  cls.counters[0] = counter0;
  for (size_t i = 0; i < fired.size(); i++) {
    metrics::TransitionCoverage transition;
    transition.state = static_cast<uint32_t>(i);
    transition.symbol = static_cast<uint16_t>(i);
    transition.fired = fired[i];
    transition.description = name + ":t" + std::to_string(i);
    cls.transitions.push_back(transition);
  }
  return cls;
}

TEST(Merge, SumsStatsDropsEventsAndViolations) {
  std::vector<TraceFile> captures;
  captures.push_back(Shard(100, 7, {{ViolationKind::kBadSite, "b"},
                                    {ViolationKind::kBadSite, "a"}}));
  captures.push_back(Shard(1000, 13, {{ViolationKind::kBadSite, "a"},
                                      {ViolationKind::kStrictEvent, "a"}}));
  auto merged = MergeCaptures(captures, {"one", "two"});
  ASSERT_TRUE(merged.ok()) << merged.error().ToString();
  const FleetReport& report = merged.value();

  EXPECT_EQ(report.shards, 2u);
  EXPECT_EQ(report.dropped, 1100u);
  EXPECT_EQ(report.events, 20u);
  uint64_t index = 0;
  for (const trace::StatsField& field : trace::kStatsFields) {
    EXPECT_EQ(report.stats.*field.field, 1100 + 2 * index) << field.name;
    index++;
  }

  // Census: (kind, automaton) sorted, occurrences counted across shards.
  ASSERT_EQ(report.violations.size(), 3u);
  EXPECT_EQ(report.violations[0].automaton, "a");
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kBadSite);
  EXPECT_EQ(report.violations[0].count, 2u);
  EXPECT_EQ(report.violations[1].automaton, "b");
  EXPECT_EQ(report.violations[1].count, 1u);
  EXPECT_EQ(report.violations[2].kind, ViolationKind::kStrictEvent);
  EXPECT_EQ(report.violations[2].count, 1u);
  EXPECT_FALSE(report.has_metrics);
}

TEST(Merge, CountersSumAndCoverageOrs) {
  std::vector<TraceFile> captures;
  for (int shard = 0; shard < 2; shard++) {
    TraceFile file = Shard(0, 0, {});
    file.summary.has_metrics = true;
    file.summary.metrics.mode = metrics::MetricsMode::kCounters;
    // Shard 0 fires transition 0, shard 1 fires transition 2; transition 1
    // is dead fleet-wide.
    file.summary.metrics.classes.push_back(
        Class("alpha", shard == 0 ? 10 : 32,
              {shard == 0, false, shard == 1}));
    // Only shard 1 knows "beta": per-class merge is by name, not position.
    if (shard == 1) {
      file.summary.metrics.classes.push_back(Class("beta", 5, {true}));
    }
    file.summary.metrics.histograms[0].count = 4;
    file.summary.metrics.histograms[0].sum_ns = 400;
    file.summary.metrics.histograms[0].buckets[3] = 4;
    captures.push_back(std::move(file));
  }

  auto merged = MergeCaptures(captures, {"one", "two"});
  ASSERT_TRUE(merged.ok()) << merged.error().ToString();
  const FleetReport& report = merged.value();
  EXPECT_TRUE(report.has_metrics);
  EXPECT_EQ(report.metric_shards, 2u);

  ASSERT_EQ(report.metrics.classes.size(), 2u);  // sorted by name
  const metrics::ClassSnapshot& alpha = report.metrics.classes[0];
  EXPECT_EQ(alpha.name, "alpha");
  EXPECT_EQ(alpha.counters[0], 42u);
  ASSERT_EQ(alpha.transitions.size(), 3u);
  EXPECT_TRUE(alpha.transitions[0].fired);
  EXPECT_FALSE(alpha.transitions[1].fired);  // dead fleet-wide
  EXPECT_TRUE(alpha.transitions[2].fired);
  EXPECT_EQ(report.metrics.classes[1].name, "beta");
  EXPECT_EQ(report.metrics.classes[1].counters[0], 5u);

  EXPECT_EQ(report.metrics.histograms[0].count, 8u);
  EXPECT_EQ(report.metrics.histograms[0].sum_ns, 800u);
  EXPECT_EQ(report.metrics.histograms[0].buckets[3], 8u);
}

TEST(Merge, MismatchedTransitionGridsRejected) {
  std::vector<TraceFile> captures;
  for (int shard = 0; shard < 2; shard++) {
    TraceFile file = Shard(0, 0, {});
    file.summary.has_metrics = true;
    // Same class name, different transition description: recorded against
    // different assertion sets — coverage bits are incomparable.
    metrics::ClassSnapshot cls = Class("gamma", 1, {true});
    if (shard == 1) {
      cls.transitions[0].description = "a different clause";
    }
    file.summary.metrics.classes.push_back(cls);
    captures.push_back(std::move(file));
  }
  auto merged = MergeCaptures(captures, {"one", "two"});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.error().code, trace::kErrVersionMismatch);
  EXPECT_NE(merged.error().ToString().find("gamma"), std::string::npos);
  EXPECT_NE(merged.error().ToString().find("two"), std::string::npos);
}

TEST(Merge, OutputIsInputOrderIndependent) {
  std::vector<TraceFile> captures;
  captures.push_back(Shard(3, 1, {{ViolationKind::kBadSite, "z"}}));
  captures.push_back(Shard(5, 2, {{ViolationKind::kBadSite, "a"}}));
  TraceFile with_metrics = Shard(7, 3, {});
  with_metrics.summary.has_metrics = true;
  with_metrics.summary.metrics.classes.push_back(Class("only", 9, {true, false}));
  captures.push_back(std::move(with_metrics));

  std::vector<size_t> order = {0, 1, 2};
  std::string first_json, first_prom;
  do {
    std::vector<TraceFile> permuted;
    std::vector<std::string> labels;
    for (size_t index : order) {
      permuted.push_back(captures[index]);
      labels.push_back("shard");  // identical labels: outputs must not differ
    }
    auto merged = MergeCaptures(permuted, labels);
    ASSERT_TRUE(merged.ok());
    const std::string json = FleetToJson(merged.value());
    const std::string prom = FleetToPrometheus(merged.value());
    if (first_json.empty()) {
      first_json = json;
      first_prom = prom;
    } else {
      EXPECT_EQ(json, first_json);
      EXPECT_EQ(prom, first_prom);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_NE(first_json.find("\"fleet\""), std::string::npos);
}

TEST(Merge, PrometheusOutputCarriesFleetFamilies) {
  std::vector<TraceFile> captures;
  captures.push_back(Shard(2, 4, {{ViolationKind::kBadSite, "noisy"}}));
  auto merged = MergeCaptures(captures, {"one"});
  ASSERT_TRUE(merged.ok());
  const std::string prom = FleetToPrometheus(merged.value());
  EXPECT_NE(prom.find("# TYPE tesla_fleet_shards gauge"), std::string::npos);
  EXPECT_NE(prom.find("tesla_fleet_shards 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE tesla_fleet_capture_drops_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("tesla_fleet_violations_total{"), std::string::npos);
  EXPECT_NE(prom.find("automaton=\"noisy\""), std::string::npos);
}

TEST(Merge, EmptyInputRejected) {
  auto merged = MergeCaptures({}, {});
  ASSERT_FALSE(merged.ok());
}

TEST(MergeFiles, MissingFileKeepsUnreadableCode) {
  auto merged = MergeCaptureFiles({"/nonexistent/fleet/shard.cap"});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.error().code, trace::kErrUnreadable);
}

}  // namespace
}  // namespace tesla
