// Adversarial TSLATRC reader coverage: a capture truncated at every byte
// boundary and bit-flipped at every byte must produce a clean Result error
// (or, for payload-only flips, a successful parse) — never a crash, hang or
// out-of-bounds read. This is the test the hardened reader exists for: a
// sidecar or merge job ingests captures from machines it does not control.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/event.h"
#include "support/intern.h"
#include "trace/format.h"

namespace tesla {
namespace {

using runtime::Binding;
using runtime::Event;
using trace::TraceFile;
using trace::TraceRecord;

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp") + "/" + name + "." +
         std::to_string(::getpid());
}

// A small but fully-featured capture: symbols, a v4 embedded manifest
// section, records of every kind (args, return values, site vars, a
// truncation flag), stats, violations — every parser path is on the attack
// surface.
std::vector<uint8_t> ValidCaptureBytes() {
  const std::string path = TempPath("tesla_corrupt_seed");
  trace::CaptureOptions options;
  options.global_shards = 3;

  trace::TraceWriter writer;
  const std::string manifest_text = "synthetic-manifest-payload (not parsed by Read)";
  EXPECT_TRUE(
      writer.Open(path, "test:corrupt", options, GlobalInterner(), manifest_text).ok());
  uint64_t seq = 0;
  int64_t args[] = {1, -2, 3};
  writer.Append(trace::MakeRecord(seq++, 0, Event::Call(InternString("corrupt_fn"), args)));
  writer.Append(
      trace::MakeRecord(seq++, 1, Event::Return(InternString("corrupt_fn"), args, -7)));
  writer.Append(trace::MakeRecord(
      seq++, 0, Event::FieldStore(InternString("corrupt_field"), 10, 20, 30)));
  Binding bindings[] = {{1, -5}, {0, 8}};
  writer.Append(trace::MakeRecord(seq++, 2, Event::Site(3, bindings)));
  int64_t many[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  writer.Append(trace::MakeRecord(seq++, 0, Event::Call(InternString("corrupt_fn"), many)));

  trace::SemanticSummary summary;
  summary.dropped = 1;
  uint64_t value = 11;
  for (const trace::StatsField& field : trace::kStatsFields) {
    summary.stats.*field.field = value++;
  }
  summary.violations.emplace_back(runtime::ViolationKind::kBadSite, "corrupt-test");
  EXPECT_TRUE(writer.Finish(summary).ok());

  std::ifstream in(path, std::ios::binary);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_GT(bytes.size(), 64u);
  return bytes;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Read() must classify every failure with one of the reader's error codes —
// an uncoded error would map to the CLI's generic exit 1 and defeat the
// scriptable exit-code contract.
void ExpectCleanFailure(const Error& error) {
  EXPECT_TRUE(error.code == trace::kErrUnreadable || error.code == trace::kErrCorrupt ||
              error.code == trace::kErrVersionMismatch)
      << "uncoded error: " << error.ToString();
}

TEST(CorruptCapture, EveryTruncationFailsCleanly) {
  const std::vector<uint8_t> bytes = ValidCaptureBytes();
  const std::string path = TempPath("tesla_corrupt_trunc");
  {
    WriteBytes(path, bytes);
    auto intact = TraceFile::Read(path);
    ASSERT_TRUE(intact.ok()) << intact.error().ToString();
    ASSERT_EQ(intact.value().records.size(), 5u);
    ASSERT_EQ(intact.value().summary.violations.size(), 1u);
  }
  for (size_t cut = 0; cut < bytes.size(); cut++) {
    WriteBytes(path, std::vector<uint8_t>(bytes.begin(),
                                          bytes.begin() + static_cast<long>(cut)));
    auto read = TraceFile::Read(path);
    ASSERT_FALSE(read.ok()) << "truncation at byte " << cut << " parsed as valid";
    ExpectCleanFailure(read.error());
  }
  std::remove(path.c_str());
}

TEST(CorruptCapture, EveryByteFlipIsHandled) {
  const std::vector<uint8_t> bytes = ValidCaptureBytes();
  const std::string path = TempPath("tesla_corrupt_flip");
  size_t parsed = 0, rejected = 0;
  for (size_t at = 0; at < bytes.size(); at++) {
    std::vector<uint8_t> mutated = bytes;
    mutated[at] ^= 0xff;
    WriteBytes(path, mutated);
    // Either verdict is acceptable — a payload flip yields different but
    // well-formed data — but the reader must return, not crash, and tag any
    // rejection with a real error code.
    auto read = TraceFile::Read(path);
    if (read.ok()) {
      parsed++;
    } else {
      rejected++;
      ExpectCleanFailure(read.error());
    }
  }
  // The structural prefix (magic, version, section lengths) must reject.
  EXPECT_GT(rejected, 0u);
  std::remove(path.c_str());
}

TEST(CorruptCapture, FlippedLengthFieldsNeverOverread) {
  // Target the varint length bytes specifically: set the continuation bit
  // and max out the payload, the classic overread-inducing mutation.
  const std::vector<uint8_t> bytes = ValidCaptureBytes();
  const std::string path = TempPath("tesla_corrupt_len");
  for (size_t at = 8; at < bytes.size(); at++) {
    std::vector<uint8_t> mutated = bytes;
    mutated[at] = 0xff;  // varint: "huge value, more bytes follow"
    WriteBytes(path, mutated);
    auto read = TraceFile::Read(path);
    if (!read.ok()) {
      ExpectCleanFailure(read.error());
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptCapture, EmptyAndGarbageFilesRejected) {
  const std::string path = TempPath("tesla_corrupt_misc");
  WriteBytes(path, {});
  auto empty = TraceFile::Read(path);
  ASSERT_FALSE(empty.ok());
  ExpectCleanFailure(empty.error());

  WriteBytes(path, std::vector<uint8_t>(4096, 0x41));
  auto garbage = TraceFile::Read(path);
  ASSERT_FALSE(garbage.ok());
  ExpectCleanFailure(garbage.error());
  std::remove(path.c_str());

  auto missing = TraceFile::Read("/nonexistent/capture.cap");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, trace::kErrUnreadable);
}

}  // namespace
}  // namespace tesla
