// Adversarial TSLATRC reader coverage: a capture truncated at every byte
// boundary and bit-flipped at every byte must produce a clean Result error
// (or, for payload-only flips, a successful parse) — never a crash, hang or
// out-of-bounds read. This is the test the hardened reader exists for: a
// sidecar or merge job ingests captures from machines it does not control.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/event.h"
#include "support/intern.h"
#include "trace/format.h"

namespace tesla {
namespace {

using runtime::Binding;
using runtime::Event;
using trace::TraceFile;
using trace::TraceRecord;

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp") + "/" + name + "." +
         std::to_string(::getpid());
}

// A small but fully-featured capture: symbols, a v4 embedded manifest
// section, records of every kind (args, return values, site vars, a
// truncation flag), stats, violations — every parser path is on the attack
// surface.
std::vector<uint8_t> ValidCaptureBytes() {
  const std::string path = TempPath("tesla_corrupt_seed");
  trace::CaptureOptions options;
  options.global_shards = 3;

  trace::TraceWriter writer;
  const std::string manifest_text = "synthetic-manifest-payload (not parsed by Read)";
  EXPECT_TRUE(
      writer.Open(path, "test:corrupt", options, GlobalInterner(), manifest_text).ok());
  uint64_t seq = 0;
  int64_t args[] = {1, -2, 3};
  // v6 timestamps on the attack surface too: values chosen single-varint-byte
  // (≤ 127) so the footer layout is predictable for the footer tests below,
  // with one backwards step (100 → 50) exercising the signed zigzag delta
  // and one zero (record 4: a producer predating timed clauses).
  const uint64_t ts[] = {100, 50, 120, 0, 125};
  auto stamped = [&ts, &seq](Event event) {
    event.ts_ns = ts[seq];
    return event;
  };
  writer.Append(
      trace::MakeRecord(seq, 0, stamped(Event::Call(InternString("corrupt_fn"), args))));
  seq++;
  writer.Append(trace::MakeRecord(
      seq, 1, stamped(Event::Return(InternString("corrupt_fn"), args, -7))));
  seq++;
  writer.Append(trace::MakeRecord(
      seq, 0, stamped(Event::FieldStore(InternString("corrupt_field"), 10, 20, 30))));
  seq++;
  Binding bindings[] = {{1, -5}, {0, 8}};
  writer.Append(trace::MakeRecord(seq, 2, stamped(Event::Site(3, bindings))));
  seq++;
  int64_t many[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  writer.Append(
      trace::MakeRecord(seq, 0, stamped(Event::Call(InternString("corrupt_fn"), many))));
  seq++;

  trace::SemanticSummary summary;
  summary.dropped = 1;
  uint64_t value = 11;
  for (const trace::StatsField& field : trace::kStatsFields) {
    summary.stats.*field.field = value++;
  }
  summary.violations.emplace_back(runtime::ViolationKind::kBadSite, "corrupt-test");
  EXPECT_TRUE(writer.Finish(summary).ok());

  std::ifstream in(path, std::ios::binary);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_GT(bytes.size(), 64u);
  return bytes;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Read() must classify every failure with one of the reader's error codes —
// an uncoded error would map to the CLI's generic exit 1 and defeat the
// scriptable exit-code contract.
void ExpectCleanFailure(const Error& error) {
  EXPECT_TRUE(error.code == trace::kErrUnreadable || error.code == trace::kErrCorrupt ||
              error.code == trace::kErrVersionMismatch)
      << "uncoded error: " << error.ToString();
}

TEST(CorruptCapture, EveryTruncationFailsCleanly) {
  const std::vector<uint8_t> bytes = ValidCaptureBytes();
  const std::string path = TempPath("tesla_corrupt_trunc");
  {
    WriteBytes(path, bytes);
    auto intact = TraceFile::Read(path);
    ASSERT_TRUE(intact.ok()) << intact.error().ToString();
    ASSERT_EQ(intact.value().records.size(), 5u);
    ASSERT_EQ(intact.value().summary.violations.size(), 1u);
  }
  for (size_t cut = 0; cut < bytes.size(); cut++) {
    WriteBytes(path, std::vector<uint8_t>(bytes.begin(),
                                          bytes.begin() + static_cast<long>(cut)));
    auto read = TraceFile::Read(path);
    ASSERT_FALSE(read.ok()) << "truncation at byte " << cut << " parsed as valid";
    ExpectCleanFailure(read.error());
  }
  std::remove(path.c_str());
}

TEST(CorruptCapture, EveryByteFlipIsHandled) {
  const std::vector<uint8_t> bytes = ValidCaptureBytes();
  const std::string path = TempPath("tesla_corrupt_flip");
  size_t parsed = 0, rejected = 0;
  for (size_t at = 0; at < bytes.size(); at++) {
    std::vector<uint8_t> mutated = bytes;
    mutated[at] ^= 0xff;
    WriteBytes(path, mutated);
    // Either verdict is acceptable — a payload flip yields different but
    // well-formed data — but the reader must return, not crash, and tag any
    // rejection with a real error code.
    auto read = TraceFile::Read(path);
    if (read.ok()) {
      parsed++;
    } else {
      rejected++;
      ExpectCleanFailure(read.error());
    }
  }
  // The structural prefix (magic, version, section lengths) must reject.
  EXPECT_GT(rejected, 0u);
  std::remove(path.c_str());
}

TEST(CorruptCapture, FlippedLengthFieldsNeverOverread) {
  // Target the varint length bytes specifically: set the continuation bit
  // and max out the payload, the classic overread-inducing mutation.
  const std::vector<uint8_t> bytes = ValidCaptureBytes();
  const std::string path = TempPath("tesla_corrupt_len");
  for (size_t at = 8; at < bytes.size(); at++) {
    std::vector<uint8_t> mutated = bytes;
    mutated[at] = 0xff;  // varint: "huge value, more bytes follow"
    WriteBytes(path, mutated);
    auto read = TraceFile::Read(path);
    if (!read.ok()) {
      ExpectCleanFailure(read.error());
    }
  }
  std::remove(path.c_str());
}

// The v6 timestamp footer is the file's final section: presence byte, field
// count, base ts, last ts. With the seed's single-byte ts values it is
// exactly {0x01, 0x02, 100, 125} — asserted here so the surgery tests below
// cannot silently drift off the format.
std::vector<uint8_t> ExpectedTsFooter() { return {0x01, 0x02, 100, 125}; }

TEST(CorruptCapture, TimestampFooterRoundTrips) {
  const std::vector<uint8_t> bytes = ValidCaptureBytes();
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(std::vector<uint8_t>(bytes.end() - 4, bytes.end()), ExpectedTsFooter());
  const std::string path = TempPath("tesla_corrupt_ts_ok");
  WriteBytes(path, bytes);
  auto read = TraceFile::Read(path);
  ASSERT_TRUE(read.ok()) << read.error().ToString();
  EXPECT_TRUE(read.value().summary.has_timestamps);
  EXPECT_EQ(read.value().summary.ts_base_ns, 100u);
  EXPECT_EQ(read.value().summary.ts_last_ns, 125u);
  ASSERT_EQ(read.value().records.size(), 5u);
  const uint64_t expected[] = {100, 50, 120, 0, 125};
  for (size_t i = 0; i < 5; i++) {
    EXPECT_EQ(read.value().records[i].ts_ns, expected[i]) << "record " << i;
  }
  std::remove(path.c_str());
}

TEST(CorruptCapture, UnknownTimestampFooterFieldsDiscarded) {
  // v3 self-describing-footer policy applied to the timestamp section: a
  // newer writer may append fields; this reader must take the two it knows
  // and discard the rest, not reject the file.
  std::vector<uint8_t> bytes = ValidCaptureBytes();
  ASSERT_EQ(std::vector<uint8_t>(bytes.end() - 4, bytes.end()), ExpectedTsFooter());
  bytes[bytes.size() - 3] = 0x04;  // field count 2 → 4
  bytes.push_back(0x2a);           // two unknown future fields
  bytes.push_back(0x2b);
  const std::string path = TempPath("tesla_corrupt_ts_extra");
  WriteBytes(path, bytes);
  auto read = TraceFile::Read(path);
  ASSERT_TRUE(read.ok()) << read.error().ToString();
  EXPECT_TRUE(read.value().summary.has_timestamps);
  EXPECT_EQ(read.value().summary.ts_base_ns, 100u);
  EXPECT_EQ(read.value().summary.ts_last_ns, 125u);
  std::remove(path.c_str());
}

TEST(CorruptCapture, TruncatedTimestampFooterRejected) {
  // Redundant with the full truncation sweep, but pinned here so a footer
  // regression names itself: every cut inside the ts footer must fail clean.
  const std::vector<uint8_t> bytes = ValidCaptureBytes();
  const std::string path = TempPath("tesla_corrupt_ts_trunc");
  for (size_t keep = bytes.size() - 4; keep < bytes.size(); keep++) {
    WriteBytes(path, std::vector<uint8_t>(bytes.begin(),
                                          bytes.begin() + static_cast<long>(keep)));
    auto read = TraceFile::Read(path);
    ASSERT_FALSE(read.ok()) << "footer cut at " << keep << " parsed as valid";
    ExpectCleanFailure(read.error());
  }
  std::remove(path.c_str());
}

TEST(CorruptCapture, InvalidTimestampPresenceByteRejected) {
  std::vector<uint8_t> bytes = ValidCaptureBytes();
  ASSERT_EQ(std::vector<uint8_t>(bytes.end() - 4, bytes.end()), ExpectedTsFooter());
  bytes[bytes.size() - 4] = 0x02;  // presence must be 0 or 1
  const std::string path = TempPath("tesla_corrupt_ts_presence");
  WriteBytes(path, bytes);
  auto read = TraceFile::Read(path);
  ASSERT_FALSE(read.ok());
  ExpectCleanFailure(read.error());
  std::remove(path.c_str());
}

TEST(CorruptCapture, VersionPolicyGate) {
  // Readers accept v1–v6 and reject anything newer with the dedicated code
  // (so a fleet can distinguish "old reader" from "corrupt file"). An older
  // version digit over this v6 body must never crash: the body is not valid
  // v1–v5, so any verdict is fine as long as failures stay coded.
  const std::vector<uint8_t> bytes = ValidCaptureBytes();
  const std::string path = TempPath("tesla_corrupt_version");
  for (char digit = '7'; digit <= '9'; digit++) {
    std::vector<uint8_t> mutated = bytes;
    mutated[7] = static_cast<uint8_t>(digit);
    WriteBytes(path, mutated);
    auto read = TraceFile::Read(path);
    ASSERT_FALSE(read.ok()) << "v" << digit << " accepted";
    EXPECT_EQ(read.error().code, trace::kErrVersionMismatch) << "v" << digit;
  }
  for (char digit = '1'; digit <= '5'; digit++) {
    std::vector<uint8_t> mutated = bytes;
    mutated[7] = static_cast<uint8_t>(digit);
    WriteBytes(path, mutated);
    auto read = TraceFile::Read(path);
    if (!read.ok()) {
      ExpectCleanFailure(read.error());
    }
  }
  std::remove(path.c_str());
}

TEST(CorruptCapture, EmptyAndGarbageFilesRejected) {
  const std::string path = TempPath("tesla_corrupt_misc");
  WriteBytes(path, {});
  auto empty = TraceFile::Read(path);
  ASSERT_FALSE(empty.ok());
  ExpectCleanFailure(empty.error());

  WriteBytes(path, std::vector<uint8_t>(4096, 0x41));
  auto garbage = TraceFile::Read(path);
  ASSERT_FALSE(garbage.ok());
  ExpectCleanFailure(garbage.error());
  std::remove(path.c_str());

  auto missing = TraceFile::Read("/nonexistent/capture.cap");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, trace::kErrUnreadable);
}

}  // namespace
}  // namespace tesla
