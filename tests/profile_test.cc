// tesla::profile — workload profiling and profile-guided plan compilation.
//
// Covers: profile determinism across sync / async-queue / multi-consumer
// dispatch (the same differential discipline as queue_mc_test, extended to
// the profile's deterministic cells, partial-binding attribution and
// sketches); the secondary prefix index a plan hint builds (differential
// against the naive scan); hints text round-trip; sketch estimate accuracy;
// the v5 capture round-trip; ResetStats rewinding SlotPool high-water marks
// (regression, alongside the shard_pool_overflows() reset test in
// metrics_test); and the once-only OnWarning when the population gate keeps
// disabling the key probe for a profiled class.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "profile/collector.h"
#include "profile/hints.h"
#include "profile/snapshot.h"
#include "queue/queue.h"
#include "runtime/handler.h"
#include "runtime/runtime.h"
#include "support/hash.h"
#include "support/log.h"
#include "trace/format.h"
#include "trace/replay.h"

namespace tesla {
namespace {

using automata::CompileAssertion;
using runtime::Binding;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::ThreadContext;

Symbol S(const char* name) { return InternString(name); }

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp") + "/" + name;
}

// Deterministic-profile equality: every cell the schema marks deterministic,
// the partial-binding attribution and the sketches must agree; latency cells
// are wall-clock and excluded by the same schema bit the replay comparator
// uses.
void ExpectSameDeterministicProfile(const profile::Snapshot& a, const profile::Snapshot& b,
                                    const char* where) {
  ASSERT_EQ(a.classes.size(), b.classes.size()) << where;
  for (size_t c = 0; c < a.classes.size(); c++) {
    const profile::ClassProfile& pa = a.classes[c];
    const profile::ClassProfile& pb = b.classes[c];
    ASSERT_EQ(pa.name, pb.name) << where;
    EXPECT_EQ(pa.key_vars, pb.key_vars) << where << " " << pa.name;
    for (size_t i = 0; i < profile::kCellCount; i++) {
      if (!profile::kCellDeterministic[i]) {
        continue;
      }
      EXPECT_EQ(pa.cells[i], pb.cells[i])
          << where << " " << pa.name << "." << profile::kCellNames[i];
    }
    for (size_t p = 0; p < profile::kMaxKeyVars; p++) {
      EXPECT_EQ(pa.var_partial[p], pb.var_partial[p])
          << where << " " << pa.name << " partial[" << p << "]";
      for (size_t w = 0; w < profile::kSketchWords; w++) {
        EXPECT_EQ(pa.sketch[p][w], pb.sketch[p][w])
            << where << " " << pa.name << " sketch[" << p << "][" << w << "]";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism differential: the same per-class event streams, dispatched
// inline, through one drain thread, and through four shard-owning consumers,
// must produce identical profile snapshots.

constexpr int kClasses = 4;
constexpr int kIterations = 300;

struct ClassSymbols {
  Symbol enter;
  Symbol check;
  Symbol exit;
  uint32_t id;
};

automata::Manifest MakeManifest() {
  automata::Manifest manifest;
  for (int g = 0; g < kClasses; g++) {
    const std::string n = std::to_string(g);
    const std::string source = "TESLA_GLOBAL(call(pfenter" + n + "), returnfrom(pfexit" + n +
                               "), previously(pfcheck" + n + "(x) == 0))";
    auto automaton = CompileAssertion(source, {}, "profile-" + n);
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    manifest.Add(std::move(automaton.value()));
  }
  return manifest;
}

profile::Snapshot RunWorkload(size_t consumers) {
  SetLogLevel(LogLevel::kSilent);
  RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = 8;
  options.profile = true;
  Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  EXPECT_TRUE(rt.Register(manifest).ok());

  std::vector<ClassSymbols> symbols;
  for (int g = 0; g < kClasses; g++) {
    const std::string n = std::to_string(g);
    symbols.push_back({InternString("pfenter" + n), InternString("pfcheck" + n),
                       InternString("pfexit" + n),
                       static_cast<uint32_t>(rt.FindAutomaton("profile-" + n))});
  }
  std::vector<std::unique_ptr<ThreadContext>> contexts;
  for (int g = 0; g < kClasses; g++) {
    contexts.push_back(std::make_unique<ThreadContext>(rt));
  }
  std::unique_ptr<queue::EventQueue> q;
  if (consumers > 0) {
    queue::QueueOptions queue_options;
    queue_options.consumers = consumers;
    q = std::make_unique<queue::EventQueue>(rt, queue_options);
    q->Start();
  }

  std::vector<std::thread> workers;
  for (int g = 0; g < kClasses; g++) {
    workers.emplace_back([&rt, &symbols, &contexts, g] {
      const ClassSymbols& s = symbols[g];
      ThreadContext& ctx = *contexts[g];
      for (int i = 0; i < kIterations; i++) {
        rt.OnFunctionCall(ctx, s.enter, {});
        if (i % 5 != 4) {
          int64_t args[] = {i % 7};
          rt.OnFunctionReturn(ctx, s.check, args, 0);
        }
        Binding site[] = {{0, i % 7}};
        rt.OnAssertionSite(ctx, s.id, site);
        rt.OnFunctionReturn(ctx, s.exit, {}, 0);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (q != nullptr) {
    q->Stop();
  }
  return rt.CollectProfile();
}

TEST(ProfileDifferential, AsyncAndMultiConsumerMatchSync) {
  const profile::Snapshot sync = RunWorkload(0);
  const profile::Snapshot async_one = RunWorkload(1);
  const profile::Snapshot mc = RunWorkload(4);

  // Sanity: the workload really dispatched and really profiled.
  ASSERT_EQ(sync.classes.size(), static_cast<size_t>(kClasses));
  uint64_t dispatches = 0;
  for (const profile::ClassProfile& cls : sync.classes) {
    dispatches += cls.cell(profile::Cell::dispatches);
    EXPECT_GT(cls.cell(profile::Cell::fanout_peak), 0u) << cls.name;
  }
  EXPECT_GT(dispatches, 0u);

  ExpectSameDeterministicProfile(sync, async_one, "async-queue");
  ExpectSameDeterministicProfile(sync, mc, "multi-consumer");
}

// ---------------------------------------------------------------------------
// The secondary prefix index: a plan hint naming a key position must change
// *where* partially-bound dispatch looks, never *what* it computes.

struct Side {
  Side(const std::string& source, RuntimeOptions options) : rt(options) {
    auto automaton = CompileAssertion(source, {}, "diff");
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    automata::Manifest manifest;
    manifest.Add(std::move(automaton.value()));
    EXPECT_TRUE(rt.Register(manifest).ok());
    id = static_cast<uint32_t>(rt.FindAutomaton("diff"));
    rt.AddHandler(&handler);
    ctx = std::make_unique<ThreadContext>(rt);
  }
  Runtime rt;
  runtime::CountingHandler handler;
  std::unique_ptr<ThreadContext> ctx;
  uint32_t id = 0;
};

TEST(ProfileHints, PrefixIndexedDispatchAgreesWithNaiveScan) {
  SetLogLevel(LogLevel::kSilent);
  const std::string source = "TESLA_WITHIN(syscall, previously(pair(x, y) == 0))";

  RuntimeOptions hinted_options;
  hinted_options.fail_stop = false;
  hinted_options.profile = true;
  {
    profile::ClassHint hint;
    hint.name = "diff";
    hint.min_population = 0;
    hint.prefix_key_pos = 0;  // secondary index on x
    hinted_options.plan_hints.classes.push_back(hint);
  }
  RuntimeOptions naive_options;
  naive_options.fail_stop = false;
  naive_options.instance_index = false;
  Side hinted(source, hinted_options);
  Side naive(source, naive_options);

  uint64_t rng = 12345;
  for (int round = 0; round < 400; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 5);
    int64_t x = static_cast<int64_t>((rng >> 40) % 4);
    int64_t y = static_cast<int64_t>((rng >> 45) % 4);
    int64_t args[] = {x, y};
    Binding full[] = {{0, x}, {1, y}};
    Binding partial[] = {{0, x}};

    for (Side* s : {&hinted, &naive}) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("pair"), args, 0);
          break;
        case 2:
          s->rt.OnAssertionSite(*s->ctx, s->id, full);
          break;
        case 3:
          s->rt.OnAssertionSite(*s->ctx, s->id, partial);
          break;
        case 4:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    const runtime::RuntimeStats& a = hinted.rt.stats();
    const runtime::RuntimeStats& b = naive.rt.stats();
    ASSERT_EQ(a.instances_created, b.instances_created) << "round " << round;
    ASSERT_EQ(a.instances_cloned, b.instances_cloned) << "round " << round;
    ASSERT_EQ(a.transitions, b.transitions) << "round " << round;
    ASSERT_EQ(a.accepts, b.accepts) << "round " << round;
    ASSERT_EQ(a.violations, b.violations) << "round " << round;
  }
  const std::vector<runtime::Violation>& va = hinted.handler.violations();
  const std::vector<runtime::Violation>& vb = naive.handler.violations();
  ASSERT_EQ(va.size(), vb.size());
  for (size_t i = 0; i < va.size(); i++) {
    EXPECT_EQ(va[i].kind, vb[i].kind) << "violation " << i;
  }

  // The hint really built and served the secondary index: partially-bound
  // dispatches took prefix probes instead of full scans.
  const profile::Snapshot snapshot = hinted.rt.CollectProfile();
  ASSERT_EQ(snapshot.classes.size(), 1u);
  EXPECT_GT(snapshot.classes[0].cell(profile::Cell::prefix_probes), 0u);
  EXPECT_GT(snapshot.classes[0].cell(profile::Cell::index_probes), 0u);
}

// ---------------------------------------------------------------------------
// Satellite: ResetStats() rewinds SlotPool high-water marks.

TEST(ProfileReset, ResetStatsRewindsPoolHighWater) {
  // A global automaton stores instances in runtime-owned shard contexts.
  // Clone a burst of instances, retire them (returnfrom deactivates the
  // class and frees its instances), and verify the recorded peak survives —
  // then that ResetStats() rewinds it to the *live* population rather than
  // leaving the stale peak behind to pollute the next profile window.
  SetLogLevel(LogLevel::kSilent);
  RuntimeOptions options;
  options.fail_stop = false;
  options.profile = true;
  Runtime rt(options);
  auto automaton = CompileAssertion(
      "TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))", {}, "m");
  ASSERT_TRUE(automaton.ok());
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  ASSERT_TRUE(rt.Register(manifest).ok());
  ThreadContext ctx(rt);

  rt.OnFunctionCall(ctx, S("syscall"), {});
  for (int64_t v = 0; v < 8; v++) {
    int64_t args[] = {v};
    rt.OnFunctionReturn(ctx, S("check"), args, 0);
  }
  rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);  // deactivates; instances freed

  const uint64_t peak = rt.shard_pool_high_water();
  EXPECT_GE(peak, 8u);  // wildcard + clones were simultaneously live
  EXPECT_EQ(rt.CollectProfile().pool_high_water, peak);

  rt.ResetStats();

  // The peak rewound to the (now empty) live population.
  EXPECT_LT(rt.shard_pool_high_water(), peak);
  EXPECT_EQ(rt.CollectProfile().pool_high_water, rt.shard_pool_high_water());

  // And the mark still tracks new activity after the reset.
  rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {1};
  rt.OnFunctionReturn(ctx, S("check"), args, 0);
  EXPECT_GT(rt.shard_pool_high_water(), 0u);
}

// ---------------------------------------------------------------------------
// Satellite: once-only warning when the population gate keeps forcing scans.

class WarningLog : public runtime::EventHandler {
 public:
  void OnWarning(const runtime::ClassInfo& cls, const std::string& message) override {
    count_++;
    last_ = message;
  }
  uint64_t count() const { return count_; }
  const std::string& last() const { return last_; }

 private:
  uint64_t count_ = 0;
  std::string last_;
};

TEST(ProfileWarnings, GateDisablingProbeWarnsExactlyOnce) {
  SetLogLevel(LogLevel::kSilent);
  RuntimeOptions options;
  options.fail_stop = false;
  options.profile = true;
  options.index_min_population = 1 << 20;  // the probe can never win
  Runtime rt(options);
  auto automaton =
      CompileAssertion("TESLA_WITHIN(syscall, previously(check(x) == 0))", {}, "m");
  ASSERT_TRUE(automaton.ok());
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  ASSERT_TRUE(rt.Register(manifest).ok());
  WarningLog warnings;
  rt.AddHandler(&warnings);
  ThreadContext ctx(rt);

  rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {1};
  rt.OnFunctionReturn(ctx, S("check"), args, 0);
  // Well past the warm-up threshold: every fully-bound site dispatch is a
  // gated scan the index would have served.
  for (int i = 0; i < 200; i++) {
    Binding site[] = {{0, 1}};
    rt.OnAssertionSite(ctx, rt.FindAutomaton("m"), site);
  }

  EXPECT_EQ(warnings.count(), 1u);
  EXPECT_NE(warnings.last().find("index_min_population"), std::string::npos);

  // The profile attributes those dispatches to the gate.
  const profile::Snapshot snapshot = rt.CollectProfile();
  ASSERT_EQ(snapshot.classes.size(), 1u);
  EXPECT_GE(snapshot.classes[0].cell(profile::Cell::small_population), 64u);
}

// ---------------------------------------------------------------------------
// Hints text round-trip and hint-derived plan behaviour.

TEST(ProfileHints, TextRoundTrip) {
  profile::PlanHints hints;
  hints.classes.push_back({"mac.fs open", 128, 0, 1});  // space in the name
  hints.classes.push_back({"proc.setuid", 16, -1, -1});
  const std::string text = profile::HintsToText(hints);
  auto parsed = profile::ParseHints(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed.value().classes.size(), 2u);
  EXPECT_EQ(parsed.value().classes[0].name, "mac.fs open");
  EXPECT_EQ(parsed.value().classes[0].capacity, 128u);
  EXPECT_EQ(parsed.value().classes[0].min_population, 0);
  EXPECT_EQ(parsed.value().classes[0].prefix_key_pos, 1);
  EXPECT_EQ(parsed.value().classes[1].name, "proc.setuid");
  EXPECT_EQ(parsed.value().classes[1].min_population, -1);

  EXPECT_FALSE(profile::ParseHints("class nonsense").ok());
  EXPECT_TRUE(profile::ParseHints("# comment only\n\n").ok());
}

TEST(ProfileHints, SnapshotDistillsGatedScansIntoHints) {
  profile::Snapshot snapshot;
  profile::ClassProfile cls;
  cls.name = "gated";
  cls.key_vars = {0};
  cls.cells[static_cast<size_t>(profile::Cell::dispatches)] = 1000;
  cls.cells[static_cast<size_t>(profile::Cell::scan_fallbacks)] = 900;
  cls.cells[static_cast<size_t>(profile::Cell::small_population)] = 900;
  cls.cells[static_cast<size_t>(profile::Cell::fanout_peak)] = 24;
  snapshot.classes.push_back(cls);

  const profile::PlanHints hints = profile::HintsFromSnapshot(snapshot);
  ASSERT_EQ(hints.classes.size(), 1u);
  EXPECT_EQ(hints.classes[0].min_population, 0);    // turn the probe back on
  EXPECT_GE(hints.classes[0].capacity, 48u);        // ≥ 2× the observed peak
  EXPECT_EQ(hints.classes[0].prefix_key_pos, -1);   // scans weren't partial-bound
}

// ---------------------------------------------------------------------------
// Sketch accuracy: linear counting is exact for small n and within its
// documented error for n ≈ m/2.

TEST(ProfileSketch, EstimatesDistinctValues) {
  profile::Collector collector;
  collector.EnsureClassCapacity(2);
  profile::Shard* shard = collector.RegisterShard();
  for (uint64_t v = 0; v < 10; v++) {
    shard->SketchValue(0, 0, HashU64(v));
    shard->SketchValue(0, 0, HashU64(v));  // duplicates must not inflate
  }
  for (uint64_t v = 0; v < 120; v++) {
    shard->SketchValue(1, 0, HashU64(v * 7919 + 3));
  }

  std::vector<uint64_t> merged(2 * profile::kClassStride);
  collector.Merge(2, merged.data());
  profile::ClassProfile small;
  profile::ClassProfile large;
  small.key_vars = {0};
  large.key_vars = {0};
  std::copy_n(merged.data() + profile::kSketchOffset, profile::kSketchWords,
              small.sketch[0]);
  std::copy_n(merged.data() + profile::kClassStride + profile::kSketchOffset,
              profile::kSketchWords, large.sketch[0]);

  EXPECT_NEAR(small.EstimatedDistinct(0), 10.0, 2.0);
  EXPECT_NEAR(large.EstimatedDistinct(0), 120.0, 30.0);
}

// ---------------------------------------------------------------------------
// The v5 capture round-trip: the profile section survives write → read and
// merges into fleet reports.

TEST(ProfileCapture, SurvivesCaptureRoundTrip) {
  SetLogLevel(LogLevel::kSilent);
  RuntimeOptions options;
  options.fail_stop = false;
  options.profile = true;
  options.trace_mode = trace::TraceMode::kFullCapture;
  Runtime rt(options);
  auto automaton =
      CompileAssertion("TESLA_WITHIN(syscall, previously(check(x) == 0))", {}, "m");
  ASSERT_TRUE(automaton.ok());
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  ASSERT_TRUE(rt.Register(manifest).ok());
  ThreadContext ctx(rt);
  rt.OnFunctionCall(ctx, S("syscall"), {});
  for (int64_t v = 0; v < 5; v++) {
    int64_t args[] = {v};
    rt.OnFunctionReturn(ctx, S("check"), args, 0);
    Binding site[] = {{0, v}};
    rt.OnAssertionSite(ctx, rt.FindAutomaton("m"), site);
  }
  rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  const std::string path = TempPath("profile_roundtrip.trc");
  ASSERT_TRUE(trace::WriteCapture(path, "file:none", rt).ok());
  auto read = trace::TraceFile::Read(path);
  ASSERT_TRUE(read.ok()) << read.error().ToString();
  EXPECT_EQ(read.value().version, trace::kTraceVersion);
  ASSERT_TRUE(read.value().summary.has_profile);

  const profile::Snapshot want = rt.CollectProfile();
  ExpectSameDeterministicProfile(want, read.value().summary.profile, "capture");
  EXPECT_EQ(read.value().summary.profile.pool_high_water, want.pool_high_water);
  EXPECT_EQ(read.value().summary.profile.pool_capacity, want.pool_capacity);

  // Self-merge doubles the sums and keeps the peaks — the fleet rule.
  profile::Snapshot doubled = want;
  profile::MergeInto(&doubled, want);
  ASSERT_EQ(doubled.classes.size(), want.classes.size());
  EXPECT_EQ(doubled.classes[0].cell(profile::Cell::dispatches),
            2 * want.classes[0].cell(profile::Cell::dispatches));
  EXPECT_EQ(doubled.classes[0].cell(profile::Cell::fanout_peak),
            want.classes[0].cell(profile::Cell::fanout_peak));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tesla
