// tesla::queue multi-consumer dispatch — differential, flush-barrier,
// work-stealing and shard-ownership coverage.
//
// The multi-consumer refactor splits every queued record into a context
// stage (run by the claiming consumer) and forwarded shard stages (run by
// each touched shard's owner), so its central claim is the same as the
// single-consumer queue's, only sharper: N drain threads change *where*
// dispatch happens, never *what* it computes. The differential test drives
// identical streams inline and through four consumers and requires every
// replay-comparable RuntimeStats field, every per-class metrics counter and
// the violation multiset to match exactly. The flush test races Flush()'s
// two-phase barrier against live producers; the steal test parks one
// consumer inside a violation handler and proves an idle consumer takes
// over its backlogged producer; the ownership test drives inline dispatch
// onto consumer-owned shards and checks the handoff protocol both counts
// and synchronises. This file runs under -fsanitize=thread in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "metrics/metrics.h"
#include "metrics/snapshot.h"
#include "queue/queue.h"
#include "runtime/runtime.h"
#include "support/log.h"
#include "trace/record.h"

namespace tesla {
namespace {

constexpr int kClasses = 6;
constexpr int kIterations = 400;

struct ClassSymbols {
  Symbol enter;
  Symbol check;
  Symbol exit;
  uint32_t id;
};

// Disjoint per-class alphabets: each class's outcome depends only on its own
// stream, so per-class counters are deterministic no matter how the streams
// interleave across consumers.
automata::Manifest MakeManifest() {
  automata::Manifest manifest;
  for (int g = 0; g < kClasses; g++) {
    const std::string n = std::to_string(g);
    const std::string source = "TESLA_GLOBAL(call(mcenter" + n + "), returnfrom(mcexit" + n +
                               "), previously(mccheck" + n + "(x) == 0))";
    auto automaton = automata::CompileAssertion(source, {}, "queue-mc-" + n);
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    manifest.Add(std::move(automaton.value()));
  }
  return manifest;
}

std::vector<ClassSymbols> ResolveSymbols(runtime::Runtime& rt) {
  std::vector<ClassSymbols> symbols;
  for (int g = 0; g < kClasses; g++) {
    const std::string n = std::to_string(g);
    ClassSymbols s;
    s.enter = InternString("mcenter" + n);
    s.check = InternString("mccheck" + n);
    s.exit = InternString("mcexit" + n);
    s.id = static_cast<uint32_t>(rt.FindAutomaton("queue-mc-" + n));
    EXPECT_GE(rt.FindAutomaton("queue-mc-" + n), 0);
    symbols.push_back(s);
  }
  return symbols;
}

// Every 5th bound skips the check, so the site deterministically violates;
// all others accept.
void DriveClass(runtime::Runtime& rt, runtime::ThreadContext& ctx, const ClassSymbols& s) {
  for (int i = 0; i < kIterations; i++) {
    rt.OnFunctionCall(ctx, s.enter, {});
    if (i % 5 != 4) {
      int64_t args[] = {i % 7};
      rt.OnFunctionReturn(ctx, s.check, args, 0);
    }
    runtime::Binding site[] = {{0, i % 7}};
    rt.OnAssertionSite(ctx, s.id, site);
    rt.OnFunctionReturn(ctx, s.exit, {}, 0);
  }
}

struct WorkloadResult {
  runtime::RuntimeStats stats;
  metrics::Snapshot metrics;
  std::vector<std::pair<runtime::ViolationKind, std::string>> violations;  // sorted
  std::vector<queue::ConsumerStats> consumers;
  queue::ProducerStats totals;
};

WorkloadResult RunWorkload(size_t consumers) {
  SetLogLevel(LogLevel::kSilent);
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = 8;
  options.metrics_mode = metrics::MetricsMode::kCounters;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  EXPECT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);

  // Contexts are created up front and outlive Stop(), as the queue requires.
  std::vector<std::unique_ptr<runtime::ThreadContext>> contexts;
  for (int g = 0; g < kClasses; g++) {
    contexts.push_back(std::make_unique<runtime::ThreadContext>(rt));
  }

  std::unique_ptr<queue::EventQueue> q;
  if (consumers > 0) {
    queue::QueueOptions queue_options;
    queue_options.ring_capacity = 256;  // small enough that producers block
    queue_options.batch_events = 64;
    queue_options.consumers = consumers;
    q = std::make_unique<queue::EventQueue>(rt, queue_options);
    q->Start();
  }

  std::vector<std::thread> workers;
  for (int g = 0; g < kClasses; g++) {
    workers.emplace_back([&rt, &symbols, &contexts, g] {
      DriveClass(rt, *contexts[g], symbols[g]);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  WorkloadResult result;
  if (q != nullptr) {
    q->Stop();
    result.consumers = q->consumer_stats();
    result.totals = q->totals();
    EXPECT_EQ(result.totals.dropped, 0u);   // blocking policy: lossless
    EXPECT_EQ(result.totals.rejected, 0u);  // producers quiesced before Stop
    EXPECT_EQ(rt.stats().queue_events, result.totals.enqueued);
  }
  result.stats = rt.stats();
  result.metrics = rt.CollectMetrics();
  result.violations = rt.violation_log();
  std::sort(result.violations.begin(), result.violations.end());
  return result;
}

TEST(QueueMcDifferential, FourConsumersMatchSync) {
  WorkloadResult sync = RunWorkload(0);
  WorkloadResult async = RunWorkload(4);

  // Sanity: real activity, really through the queue, really multi-consumer.
  EXPECT_GT(sync.stats.violations, 0u);
  EXPECT_GT(sync.stats.accepts, 0u);
  EXPECT_EQ(async.stats.queue_events, sync.stats.events);
  EXPECT_GT(async.stats.queue_batches, 0u);
  ASSERT_EQ(async.consumers.size(), 4u);
  uint64_t context_events = 0;
  uint64_t forwards_out = 0;
  uint64_t forwards_in = 0;
  for (const queue::ConsumerStats& consumer : async.consumers) {
    context_events += consumer.events;
    forwards_out += consumer.forwards_out;
    forwards_in += consumer.forwards_in;
  }
  // Every accepted record is context-dispatched exactly once, and every
  // forward pushed was drained by the flush-on-stop barrier. (Whether any
  // forwards occur at all depends on scheduler-chosen producer registration
  // order; the deterministic forwarding test below pins that path.)
  EXPECT_EQ(context_events, async.totals.enqueued);
  EXPECT_EQ(forwards_in, forwards_out);
  EXPECT_EQ(async.stats.queue_forwards, forwards_out);

  // Every replay-comparable RuntimeStats field agrees exactly; the queue-fed
  // fields (replay = 0) legitimately differ between the two modes.
#define TESLA_MC_STATS_FIELD(name, desc, replay)             \
  if (replay) {                                              \
    EXPECT_EQ(async.stats.name, sync.stats.name) << #name;   \
  }
  TESLA_RUNTIME_STATS(TESLA_MC_STATS_FIELD)
#undef TESLA_MC_STATS_FIELD

  // Per-class metrics counters are identical, class by class.
  ASSERT_EQ(async.metrics.classes.size(), sync.metrics.classes.size());
  for (size_t c = 0; c < sync.metrics.classes.size(); c++) {
    EXPECT_EQ(async.metrics.classes[c].name, sync.metrics.classes[c].name);
    for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
      EXPECT_EQ(async.metrics.classes[c].counters[k], sync.metrics.classes[c].counters[k])
          << sync.metrics.classes[c].name << "." << metrics::kClassCounterNames[k];
    }
  }

  // The violation *multiset* is identical (cross-producer order is
  // scheduler-chosen in both modes, so only the multiset is defined).
  EXPECT_EQ(async.violations, sync.violations);
}

// Two consumers behave the same as four (covers the consumer-count edge
// where several shards share an owner).
TEST(QueueMcDifferential, TwoConsumersMatchSync) {
  WorkloadResult sync = RunWorkload(0);
  WorkloadResult async = RunWorkload(2);
  EXPECT_EQ(async.stats.events, sync.stats.events);
  EXPECT_EQ(async.stats.accepts, sync.stats.accepts);
  EXPECT_EQ(async.stats.violations, sync.stats.violations);
  EXPECT_EQ(async.stats.transitions, sync.stats.transitions);
  EXPECT_EQ(async.violations, sync.violations);
}

// Deterministic cross-consumer forwarding: one main-thread producer (home:
// consumer 0 of two) drives a class whose shard consumer 1 owns, so every
// record must cross the forward ring — none can be absorbed locally.
TEST(QueueMcForwarding, RecordsCrossToShardOwner) {
  SetLogLevel(LogLevel::kSilent);
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = 8;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  ASSERT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);
  runtime::ThreadContext ctx(rt);

  queue::QueueOptions queue_options;
  queue_options.install_hook = false;
  queue_options.consumers = 2;        // consumer 1 owns the odd shards
  queue_options.steal_backlog_words = 0;  // no stealing: every record must
                                          // cross the forward ring, even if
                                          // the home consumer falls behind
  queue::EventQueue q(rt, queue_options);
  q.Start();

  // Class 1 lives on shard 1. Every 5th bound skips the check, so the site
  // violates — and the violation fires on consumer 1, in the shard stage.
  constexpr int kBounds = 250;
  uint64_t attempted = 0;
  for (int i = 0; i < kBounds; i++) {
    ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Call(symbols[1].enter, {})));
    attempted++;
    if (i % 5 != 4) {
      int64_t args[] = {i % 7};
      ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Return(symbols[1].check, args, 0)));
      attempted++;
    }
    runtime::Binding site[] = {{0, i % 7}};
    ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Site(symbols[1].id, site)));
    ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Return(symbols[1].exit, {}, 0)));
    attempted += 2;
  }
  q.Stop();

  const queue::ProducerStats totals = q.totals();
  EXPECT_EQ(totals.enqueued, attempted);
  // Every record touches exactly shard 1, which the home consumer does not
  // own: one forward per record, each dispatched by consumer 1.
  EXPECT_EQ(rt.stats().queue_forwards, attempted);
  std::vector<queue::ConsumerStats> consumers = q.consumer_stats();
  ASSERT_EQ(consumers.size(), 2u);
  EXPECT_EQ(consumers[0].events, attempted);       // context stage at home
  EXPECT_EQ(consumers[0].forwards_out, attempted);
  EXPECT_EQ(consumers[1].forwards_in, attempted);  // shard stage at the owner
  EXPECT_EQ(rt.stats().violations, static_cast<uint64_t>(kBounds) / 5);
  EXPECT_EQ(rt.stats().queue_events, attempted);
}

// Runs under TSan in CI: Flush()'s two-phase barrier is exercised while
// producers are still live (the barrier itself must be race-free even when
// its answer is immediately stale), then proves completeness once the
// producers quiesce: after a quiescent Flush() every accepted event has
// finished BOTH stages — context dispatch and forwarded shard work.
TEST(QueueMcConcurrency, FlushRacesLiveProducers) {
  SetLogLevel(LogLevel::kSilent);
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = 8;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  ASSERT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);

  std::vector<std::unique_ptr<runtime::ThreadContext>> contexts;
  for (int g = 0; g < kClasses; g++) {
    contexts.push_back(std::make_unique<runtime::ThreadContext>(rt));
  }

  queue::QueueOptions queue_options;
  queue_options.ring_capacity = 128;  // force the blocking path constantly
  queue_options.batch_events = 32;
  queue_options.consumers = 4;
  queue::EventQueue q(rt, queue_options);
  q.Start();

  std::atomic<bool> producing{true};
  std::vector<std::thread> workers;
  for (int g = 0; g < kClasses; g++) {
    workers.emplace_back([&rt, &symbols, &contexts, g] {
      DriveClass(rt, *contexts[g], symbols[g]);
    });
  }
  std::thread flusher([&q, &producing] {
    while (producing.load(std::memory_order_acquire)) {
      q.Flush();
      std::this_thread::yield();
    }
  });
  for (std::thread& worker : workers) {
    worker.join();
  }
  producing.store(false, std::memory_order_release);
  flusher.join();

  // Producers have quiesced: this Flush() is the checkpoint barrier. Both
  // stages of every accepted event must be complete before it returns,
  // without stopping the queue.
  q.Flush();
  const queue::ProducerStats totals = q.totals();
  EXPECT_EQ(rt.stats().queue_events, totals.enqueued);
  uint64_t forwards_in = 0;
  uint64_t forwards_out = 0;
  for (const queue::ConsumerStats& consumer : q.consumer_stats()) {
    forwards_in += consumer.forwards_in;
    forwards_out += consumer.forwards_out;
  }
  EXPECT_EQ(forwards_in, forwards_out);
  EXPECT_GT(rt.stats().violations, 0u);

  q.Stop();
  EXPECT_EQ(rt.stats().queue_events, q.totals().enqueued);
}

// Blocks a consumer inside a violation handler so the test can park it
// deterministically while another consumer works.
class GateHandler : public runtime::EventHandler {
 public:
  void OnViolation(const runtime::ClassInfo&, const runtime::Violation&) override {
    blocked_.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }
  void WaitUntilBlocked() {
    while (!blocked_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<bool> blocked_{false};
};

// An idle consumer must take over a backlogged producer homed to a stuck
// consumer. Consumer 0 is parked in the gate while holding producer 0's
// claim; producer 2 (also homed to consumer 0) then builds a backlog that
// only consumer 1 can drain — via the steal path.
TEST(QueueMcStealing, IdleConsumerDrainsStuckConsumersProducer) {
  SetLogLevel(LogLevel::kSilent);
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = 8;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  ASSERT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);

  GateHandler gate;
  rt.AddHandler(&gate);
  runtime::ThreadContext ctx_gate(rt);
  runtime::ThreadContext ctx_idle(rt);
  runtime::ThreadContext ctx_burst(rt);

  queue::QueueOptions queue_options;
  queue_options.install_hook = false;  // producers drive Enqueue directly
  queue_options.consumers = 2;
  queue_options.steal_backlog_words = 64;
  queue::EventQueue q(rt, queue_options);
  q.Start();

  // Producers register per-thread and are keyed by std::thread::id, so all
  // three threads must stay alive together — a joined thread's id may be
  // reused, which would merge two producers into one ring. Each thread
  // enqueues, signals, then parks until the test releases it.
  std::atomic<bool> release{false};
  auto hold = [&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // Producer 0 (home: consumer 0): a bound whose site violates — consumer 0
  // parks in the gate mid-batch, claim held. Class 0 lives on shard 0,
  // which consumer 0 owns, so the violation fires on consumer 0.
  std::atomic<bool> gate_enqueued{false};
  std::thread gate_producer([&] {
    EXPECT_TRUE(q.Enqueue(ctx_gate, runtime::Event::Call(symbols[0].enter, {})));
    runtime::Binding site[] = {{0, 3}};
    EXPECT_TRUE(q.Enqueue(ctx_gate, runtime::Event::Site(symbols[0].id, site)));
    gate_enqueued.store(true, std::memory_order_release);
    hold();
  });
  while (!gate_enqueued.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  gate.WaitUntilBlocked();

  // Producer 1 (home: consumer 1): one benign record, then quiesces, so
  // consumer 1 goes idle.
  std::atomic<bool> idle_enqueued{false};
  std::thread idle_producer([&] {
    EXPECT_TRUE(q.Enqueue(ctx_idle, runtime::Event::Call(symbols[1].enter, {})));
    idle_enqueued.store(true, std::memory_order_release);
    hold();
  });
  while (!idle_enqueued.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // Producer 2 (home: consumer 0, which is parked): the backlog. Class 1's
  // shard (1) is owned by consumer 1, so the thief dispatches everything
  // locally — the steal itself is what is under test.
  constexpr int kBurst = 1500;
  std::atomic<bool> burst_enqueued{false};
  std::thread burst_producer([&] {
    for (int i = 0; i < kBurst; i++) {
      EXPECT_TRUE(q.Enqueue(ctx_burst, runtime::Event::Call(symbols[1].enter, {})));
      EXPECT_TRUE(q.Enqueue(ctx_burst, runtime::Event::Return(symbols[1].exit, {}, 0)));
    }
    burst_enqueued.store(true, std::memory_order_release);
    hold();
  });
  while (!burst_enqueued.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // Consumer 1 must steal (consumer 0 cannot help while parked). Spin on
  // the queue's own accessor — it loads the consumers' atomic counters, so
  // it is safe to poll while the drain threads are live, unlike the plain
  // RuntimeStats fields.
  while (q.consumer_stats()[1].steals == 0) {
    std::this_thread::yield();
  }

  gate.Open();
  release.store(true, std::memory_order_release);
  gate_producer.join();
  idle_producer.join();
  burst_producer.join();
  q.Stop();

  const queue::ProducerStats totals = q.totals();
  EXPECT_EQ(q.producer_count(), 3u);
  EXPECT_EQ(rt.stats().queue_events, totals.enqueued);
  EXPECT_GE(rt.stats().queue_steals, 1u);
  std::vector<queue::ConsumerStats> consumers = q.consumer_stats();
  ASSERT_EQ(consumers.size(), 2u);
  EXPECT_GE(consumers[1].steals, 1u);
  EXPECT_EQ(rt.stats().violations, 1u);
}

// Inline dispatch landing on a consumer-owned shard must run the handoff
// protocol: announce as an intruder, take the shard lock, wait out the
// owner — and count the intrusion. Runs under TSan in CI with the owner
// actively dispatching the same class, so the owner/intruder memory
// ordering is exercised, not just the counter.
TEST(QueueMcOwnership, InlineDispatchHandsOffOwnedShard) {
  SetLogLevel(LogLevel::kSilent);
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = 8;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  ASSERT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);

  runtime::ThreadContext ctx_inline(rt);
  runtime::ThreadContext ctx_queued(rt);

  queue::QueueOptions queue_options;
  queue_options.install_hook = false;  // inline entry points stay inline
  queue_options.consumers = 2;
  queue::EventQueue q(rt, queue_options);
  q.Start();

  // Queued traffic on class 0 (shard 0, owned by consumer 0) while the main
  // thread dispatches the same class inline: every inline shard-0 access
  // must intrude on the owner.
  constexpr int kRounds = 1500;
  std::thread queued_producer([&q, &ctx_queued, &symbols] {
    for (int i = 0; i < kRounds; i++) {
      ASSERT_TRUE(q.Enqueue(ctx_queued, runtime::Event::Call(symbols[0].enter, {})));
      ASSERT_TRUE(q.Enqueue(ctx_queued, runtime::Event::Return(symbols[0].exit, {}, 0)));
    }
  });
  for (int i = 0; i < kRounds; i++) {
    rt.OnFunctionCall(ctx_inline, symbols[0].enter, {});
    rt.OnFunctionReturn(ctx_inline, symbols[0].exit, {}, 0);
  }
  queued_producer.join();
  q.Stop();

  // The inline side intruded on an owned shard at least once (the owner id
  // was assigned for the whole run, so every inline shard access counts).
  EXPECT_GE(rt.stats().shard_handoffs, 1u);
  EXPECT_EQ(rt.stats().queue_events, q.totals().enqueued);
  // Inline + queued events all dispatched, none lost.
  EXPECT_EQ(rt.stats().events, q.totals().enqueued + 2u * kRounds);
}

// The queue's metrics augmenter folds producer/consumer tallies into every
// CollectMetrics() snapshot — including after Stop() — and both exposition
// formats carry the series.
TEST(QueueMcMetrics, SnapshotCarriesQueueSeries) {
  WorkloadResult async = RunWorkload(2);
  // RunWorkload collected the snapshot after Stop(): the augmenter must
  // still be attached.
  ASSERT_EQ(async.metrics.queue_consumers.size(), 2u);
  EXPECT_EQ(async.metrics.queue_producers.size(), static_cast<size_t>(kClasses));
  uint64_t events = 0;
  for (const metrics::QueueConsumerSnapshot& consumer : async.metrics.queue_consumers) {
    events += consumer.events;
  }
  EXPECT_EQ(events, async.totals.enqueued);

  const std::string prom = metrics::ToPrometheus(async.metrics);
  EXPECT_NE(prom.find("tesla_queue_producer_enqueued_total{producer=\"0\"}"), std::string::npos);
  EXPECT_NE(prom.find("tesla_queue_consumer_batches_total{consumer=\"1\"}"), std::string::npos);
  EXPECT_NE(prom.find("tesla_queue_consumer_busy_seconds_total{consumer=\"0\"}"), std::string::npos);
  const std::string json = metrics::ToJson(async.metrics);
  EXPECT_NE(json.find("\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"forwards_out\""), std::string::npos);
}

}  // namespace
}  // namespace tesla
