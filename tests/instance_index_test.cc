// Differential coverage for the binding-keyed instance index: the indexed
// fast path (RuntimeOptions::instance_index, default on) must agree
// event-for-event with the naive two-pass scan it replaces. Both modes are
// driven through identical pseudo-random schedules and compared on every
// semantically observable quantity after every event; index_probes and
// index_scans are excluded (they intentionally differ between modes).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "runtime/handler.h"
#include "runtime/runtime.h"

namespace tesla {
namespace {

using automata::CompileAssertion;
using runtime::Binding;
using runtime::CountingHandler;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::RuntimeStats;
using runtime::ThreadContext;
using runtime::Violation;

Symbol S(const char* name) { return InternString(name); }

RuntimeOptions TestOptions() {
  RuntimeOptions options;
  options.fail_stop = false;
  // These schedules keep only a handful of instances live; pin the probe
  // threshold to zero so the indexed side actually takes the probe path the
  // differential exists to compare. The default threshold is covered by
  // ProbeDecisionIsMonotoneInPopulation below.
  options.index_min_population = 0;
  return options;
}

// One runtime + handler, compiled from `source` with the given options.
struct Side {
  Side(const std::string& source, RuntimeOptions options) : rt(options) {
    auto automaton = CompileAssertion(source, {}, "diff");
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    automata::Manifest manifest;
    manifest.Add(std::move(automaton.value()));
    EXPECT_TRUE(rt.Register(manifest).ok());
    id = static_cast<uint32_t>(rt.FindAutomaton("diff"));
    rt.AddHandler(&handler);
    ctx = std::make_unique<ThreadContext>(rt);
  }
  Runtime rt;
  CountingHandler handler;
  std::unique_ptr<ThreadContext> ctx;
  uint32_t id = 0;
};

// Indexed and naive runtimes built from the same source; Check() compares
// all semantic stats fields plus the violation-kind sequence.
struct Pair {
  explicit Pair(const std::string& source, RuntimeOptions options = TestOptions())
      : indexed(source, WithIndex(options, true)), naive(source, WithIndex(options, false)) {}

  static RuntimeOptions WithIndex(RuntimeOptions options, bool on) {
    options.instance_index = on;
    return options;
  }

  void Check(const char* where) {
    const RuntimeStats& a = indexed.rt.stats();
    const RuntimeStats& b = naive.rt.stats();
    ASSERT_EQ(a.events, b.events) << where;
    ASSERT_EQ(a.bound_entries, b.bound_entries) << where;
    ASSERT_EQ(a.bound_exits, b.bound_exits) << where;
    ASSERT_EQ(a.instances_created, b.instances_created) << where;
    ASSERT_EQ(a.instances_cloned, b.instances_cloned) << where;
    ASSERT_EQ(a.transitions, b.transitions) << where;
    ASSERT_EQ(a.accepts, b.accepts) << where;
    ASSERT_EQ(a.violations, b.violations) << where;
    ASSERT_EQ(a.overflows, b.overflows) << where;
    ASSERT_EQ(a.ignored_events, b.ignored_events) << where;
    ASSERT_EQ(a.arg_truncations, b.arg_truncations) << where;
    ASSERT_EQ(a.site_variant_truncations, b.site_variant_truncations) << where;
    // index_probes / index_scans are deliberately NOT compared: the naive
    // side never touches the index, so they differ by construction.

    const std::vector<Violation>& va = indexed.handler.violations();
    const std::vector<Violation>& vb = naive.handler.violations();
    ASSERT_EQ(va.size(), vb.size()) << where;
    for (size_t i = 0; i < va.size(); i++) {
      ASSERT_EQ(va[i].kind, vb[i].kind) << where << " violation " << i;
      ASSERT_EQ(va[i].automaton, vb[i].automaton) << where << " violation " << i;
    }
  }

  Side indexed;
  Side naive;
};

// ---------------------------------------------------------------------------
// Randomized differential schedules.

TEST(InstanceIndex, RandomizedOneVariableAgrees) {
  Pair p("TESLA_WITHIN(syscall, previously(check(x) == 0))");

  uint64_t rng = 7;
  for (int round = 0; round < 400; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 4);
    int64_t value = static_cast<int64_t>((rng >> 40) % 5);
    int64_t args[] = {value};
    Binding site[] = {{0, value}};

    for (Side* s : {&p.indexed, &p.naive}) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("check"), args, 0);
          break;
        case 2:
          s->rt.OnAssertionSite(*s->ctx, s->id, site);
          break;
        case 3:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    p.Check("round");
  }
  // The schedule must actually have exercised the fast path.
  EXPECT_GT(p.indexed.rt.stats().index_probes, 0u);
  EXPECT_EQ(p.naive.rt.stats().index_probes, 0u);
}

TEST(InstanceIndex, RandomizedTwoVariableWithPartialBindingsAgrees) {
  // pair(x, y) binds both variables on clone events, but assertion sites
  // sometimes supply only x: those dispatches cannot use the index and must
  // take the fall-back scan, which has to agree with the naive mode too.
  Pair p("TESLA_WITHIN(syscall, previously(pair(x, y) == 0))");

  uint64_t rng = 12345;
  for (int round = 0; round < 400; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 5);
    int64_t x = static_cast<int64_t>((rng >> 40) % 4);
    int64_t y = static_cast<int64_t>((rng >> 45) % 4);
    int64_t args[] = {x, y};
    Binding full[] = {{0, x}, {1, y}};
    Binding partial[] = {{0, x}};

    for (Side* s : {&p.indexed, &p.naive}) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("pair"), args, 0);
          break;
        case 2:
          s->rt.OnAssertionSite(*s->ctx, s->id, full);
          break;
        case 3:
          s->rt.OnAssertionSite(*s->ctx, s->id, partial);
          break;
        case 4:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    p.Check("round");
  }
  EXPECT_GT(p.indexed.rt.stats().index_probes, 0u);  // fully-bound sites
  EXPECT_GT(p.indexed.rt.stats().index_scans, 0u);   // partially-bound sites
}

TEST(InstanceIndex, RandomizedGlobalAutomatonAgrees) {
  Pair p("TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))");

  uint64_t rng = 4242;
  for (int round = 0; round < 300; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 4);
    int64_t value = static_cast<int64_t>((rng >> 40) % 4);
    int64_t args[] = {value};
    Binding site[] = {{0, value}};

    for (Side* s : {&p.indexed, &p.naive}) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("check"), args, 0);
          break;
        case 2:
          s->rt.OnAssertionSite(*s->ctx, s->id, site);
          break;
        case 3:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    p.Check("round");
  }
  EXPECT_GT(p.indexed.rt.stats().index_probes, 0u);
}

TEST(InstanceIndex, RandomizedDfaModeAgrees) {
  RuntimeOptions options = TestOptions();
  options.use_dfa = true;
  Pair p("TESLA_WITHIN(syscall, previously(ca(x) == 0 || cb(x) == 0))", options);

  uint64_t rng = 555;
  for (int round = 0; round < 300; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 5);
    int64_t value = static_cast<int64_t>((rng >> 40) % 4);
    int64_t args[] = {value};
    Binding site[] = {{0, value}};

    for (Side* s : {&p.indexed, &p.naive}) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("ca"), args, 0);
          break;
        case 2:
          s->rt.OnFunctionReturn(*s->ctx, S("cb"), args, 0);
          break;
        case 3:
          s->rt.OnAssertionSite(*s->ctx, s->id, site);
          break;
        case 4:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    p.Check("round");
  }
}

TEST(InstanceIndex, RandomizedOverflowPressureAgrees) {
  // A tiny pool: both modes must report the same kOverflow violations and
  // the same overflow counts even when most clones are dropped.
  RuntimeOptions options = TestOptions();
  options.instances_per_context = 3;
  Pair p("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);

  uint64_t rng = 31337;
  for (int round = 0; round < 300; round++) {
    rng = rng * 6364136223846793005ull + 1;
    // Biased towards clone events so the tiny pool actually fills within a
    // bound: 0 = enter, 1..5 = check, 6 = site, 7 = exit.
    int roll = static_cast<int>((rng >> 33) % 8);
    int action = roll == 0 ? 0 : roll <= 5 ? 1 : roll == 6 ? 2 : 3;
    int64_t value = static_cast<int64_t>((rng >> 40) % 16);
    int64_t args[] = {value};
    Binding site[] = {{0, value}};

    for (Side* s : {&p.indexed, &p.naive}) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("check"), args, 0);
          break;
        case 2:
          s->rt.OnAssertionSite(*s->ctx, s->id, site);
          break;
        case 3:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    p.Check("round");
  }
  EXPECT_GT(p.indexed.rt.stats().overflows, 0u);
}

// ---------------------------------------------------------------------------
// Directed checks on index engagement and fall-back routing.

TEST(InstanceIndex, FastPathEngagesForFullyBoundDispatch) {
  RuntimeOptions options = TestOptions();
  Side s("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);

  s.rt.OnFunctionCall(*s.ctx, S("syscall"), {});
  int64_t args[] = {42};
  s.rt.OnFunctionReturn(*s.ctx, S("check"), args, 0);
  EXPECT_GT(s.rt.stats().index_probes, 0u);
  EXPECT_EQ(s.rt.stats().index_scans, 0u);

  Binding site[] = {{0, 42}};
  s.rt.OnAssertionSite(*s.ctx, s.id, site);
  s.rt.OnFunctionReturn(*s.ctx, S("syscall"), {}, 0);
  EXPECT_EQ(s.rt.stats().violations, 0u);
}

TEST(InstanceIndex, PartialBindingFallsBackToScan) {
  Side s("TESLA_WITHIN(syscall, previously(pair(x, y) == 0))", TestOptions());

  s.rt.OnFunctionCall(*s.ctx, S("syscall"), {});
  int64_t args[] = {1, 2};
  s.rt.OnFunctionReturn(*s.ctx, S("pair"), args, 0);
  uint64_t scans_before = s.rt.stats().index_scans;

  // Only x bound at the site: mask mismatch, must take the scan path.
  Binding partial[] = {{0, 1}};
  s.rt.OnAssertionSite(*s.ctx, s.id, partial);
  EXPECT_GT(s.rt.stats().index_scans, scans_before);
}

TEST(InstanceIndex, IndexDisabledNeverProbes) {
  RuntimeOptions options = TestOptions();
  options.instance_index = false;
  Side s("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);

  s.rt.OnFunctionCall(*s.ctx, S("syscall"), {});
  int64_t args[] = {1};
  s.rt.OnFunctionReturn(*s.ctx, S("check"), args, 0);
  Binding site[] = {{0, 1}};
  s.rt.OnAssertionSite(*s.ctx, s.id, site);
  s.rt.OnFunctionReturn(*s.ctx, S("syscall"), {}, 0);
  EXPECT_EQ(s.rt.stats().index_probes, 0u);
  EXPECT_EQ(s.rt.stats().index_scans, 0u);
  EXPECT_EQ(s.rt.stats().violations, 0u);
}

TEST(InstanceIndex, ProbeDecisionIsMonotoneInPopulation) {
  // With the default index_min_population, a fully-bound dispatch must scan
  // below the threshold, probe at or above it, and never flip back to
  // scanning as the population grows (the decision is monotone in the live
  // count). The live population at the site is the wildcard plus one clone
  // per bound value.
  const size_t threshold = RuntimeOptions{}.index_min_population;
  ASSERT_GT(threshold, 1u);  // the small-population fallthrough is on by default
  bool probed_before = false;
  for (size_t clones = 1; clones <= 2 * threshold; clones++) {
    RuntimeOptions options;
    options.fail_stop = false;
    Side s("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);
    s.rt.OnFunctionCall(*s.ctx, S("syscall"), {});
    for (size_t v = 0; v < clones; v++) {
      int64_t args[] = {static_cast<int64_t>(v)};
      s.rt.OnFunctionReturn(*s.ctx, S("check"), args, 0);
    }
    s.rt.ResetStats();
    Binding site[] = {{0, 0}};
    s.rt.OnAssertionSite(*s.ctx, s.id, site);
    const bool probed = s.rt.stats().index_probes > 0;
    const bool scanned = s.rt.stats().index_scans > 0;
    ASSERT_NE(probed, scanned) << "clones=" << clones;  // exactly one path taken
    ASSERT_EQ(probed, clones + 1 >= threshold) << "clones=" << clones;
    ASSERT_TRUE(probed || !probed_before) << "clones=" << clones;  // monotone
    probed_before = probed;
    s.rt.OnFunctionReturn(*s.ctx, S("syscall"), {}, 0);
    EXPECT_EQ(s.rt.stats().violations, 0u) << "clones=" << clones;
  }

  // Threshold zero probes unconditionally, even for the first dispatch.
  Side s("TESLA_WITHIN(syscall, previously(check(x) == 0))", TestOptions());
  s.rt.OnFunctionCall(*s.ctx, S("syscall"), {});
  int64_t args[] = {7};
  s.rt.OnFunctionReturn(*s.ctx, S("check"), args, 0);
  EXPECT_GT(s.rt.stats().index_probes, 0u);
  EXPECT_EQ(s.rt.stats().index_scans, 0u);
}

TEST(InstanceIndex, ManyDistinctKeysStayIndependent) {
  // Grow the index through several rehashes and verify per-key isolation:
  // each bound value must only satisfy its own assertion site.
  RuntimeOptions options = TestOptions();
  options.instances_per_context = 512;
  Side s("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);

  s.rt.OnFunctionCall(*s.ctx, S("syscall"), {});
  for (int64_t v = 0; v < 200; v += 2) {  // bind even values only
    int64_t args[] = {v};
    s.rt.OnFunctionReturn(*s.ctx, S("check"), args, 0);
  }
  uint64_t violations = 0;
  for (int64_t v = 0; v < 200; v++) {
    Binding site[] = {{0, v}};
    s.rt.OnAssertionSite(*s.ctx, s.id, site);
    if (v % 2 != 0) violations++;  // odd values were never bound
    ASSERT_EQ(s.rt.stats().violations, violations) << "v=" << v;
  }
  s.rt.OnFunctionReturn(*s.ctx, S("syscall"), {}, 0);
}

}  // namespace
}  // namespace tesla
