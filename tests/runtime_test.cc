#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "runtime/scope.h"

namespace tesla {
namespace {

using automata::CompileAssertion;
using runtime::Binding;
using runtime::CountingHandler;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::ThreadContext;
using runtime::ViolationKind;

RuntimeOptions TestOptions() {
  RuntimeOptions options;
  options.fail_stop = false;  // tests observe violations instead of aborting
  return options;
}

// Builds a runtime around a single assertion; returns the automaton id.
struct Fixture {
  explicit Fixture(const std::string& source, RuntimeOptions options = TestOptions(),
                   const automata::LowerOptions& lower = {})
      : rt(options) {
    auto automaton = CompileAssertion(source, lower, "test");
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    automata::Manifest manifest;
    manifest.Add(std::move(automaton.value()));
    auto status = rt.Register(manifest);
    EXPECT_TRUE(status.ok()) << status.error().ToString();
    id = static_cast<uint32_t>(rt.FindAutomaton("test"));
    handler = std::make_unique<CountingHandler>();
    rt.AddHandler(handler.get());
  }

  Runtime rt;
  uint32_t id = 0;
  std::unique_ptr<CountingHandler> handler;
};

Symbol S(const char* name) { return InternString(name); }

TEST(Runtime, PreviouslySatisfied) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{7}, 0);
  Binding site[] = {{0, 7}};  // x = 7
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  EXPECT_EQ(f.rt.stats().violations, 0u);
  EXPECT_EQ(f.rt.stats().accepts, 2u);  // the (*) instance and the (x=7) clone
  EXPECT_EQ(f.rt.stats().instances_cloned, 1u);
}

TEST(Runtime, PreviouslyViolatedWhenCheckMissing) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  Binding site[] = {{0, 7}};
  f.rt.OnAssertionSite(ctx, f.id, site);

  ASSERT_EQ(f.rt.stats().violations, 1u);
  EXPECT_EQ(f.handler->violations()[0].kind, ViolationKind::kBadSite);
}

TEST(Runtime, PreviouslyViolatedOnWrongBinding) {
  // The paper's (vp3) case: the check ran for vp1/vp2 but the site sees vp3.
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{1}, 0);
  f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{2}, 0);
  EXPECT_EQ(f.rt.stats().instances_cloned, 2u);  // (x=1) and (x=2)

  Binding site[] = {{0, 3}};  // x = 3: never checked
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(Runtime, CheckWithWrongReturnValueDoesNotSatisfy) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{7}, -1);  // failed check
  Binding site[] = {{0, 7}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(Runtime, EventuallyViolatedAtCleanup) {
  Fixture f("TESLA_WITHIN(syscall, eventually(audit(x) == 0))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  Binding site[] = {{0, 5}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 0u);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);  // audit never happened

  ASSERT_GE(f.rt.stats().violations, 1u);
  EXPECT_EQ(f.handler->violations()[0].kind, ViolationKind::kBadCleanup);
}

TEST(Runtime, EventuallySatisfied) {
  Fixture f("TESLA_WITHIN(syscall, eventually(audit(x) == 0))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  Binding site[] = {{0, 5}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("audit"), std::vector<int64_t>{5}, 0);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(Runtime, SiteNeverReachedIsBypassed) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{1}, 0);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);  // no site this path
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(Runtime, EventsOutsideBoundAreIgnored) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  // No syscall entry: everything is out of bound.
  f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{1}, 0);
  Binding site[] = {{0, 1}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 0u);
  EXPECT_EQ(f.rt.stats().instances_created, 0u);
}

TEST(Runtime, BoundResetBetweenSyscalls) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  // First syscall performs the check.
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{9}, 0);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  // Second syscall must not inherit the first one's check.
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  Binding site[] = {{0, 9}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(Runtime, RepeatedIdenticalCheckIsIgnoredNotViolated) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{4}, 0);
  f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{4}, 0);  // repeat
  Binding site[] = {{0, 4}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);
  EXPECT_GE(f.rt.stats().ignored_events, 1u);
}

TEST(Runtime, StrictAutomatonRejectsUnconsumableEvents) {
  Fixture f("TESLA_WITHIN(syscall, strict(TSEQUENCE(a(), b())))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionCall(ctx, S("b"), {});  // b before a
  ASSERT_GE(f.rt.stats().violations, 1u);
  EXPECT_EQ(f.handler->violations()[0].kind, ViolationKind::kStrictEvent);
}

TEST(Runtime, OrAcceptsEitherOrBoth) {
  const char* source = "TESLA_WITHIN(syscall, previously(ca(x) == 0 || cb(x) == 0))";
  for (auto events : {std::vector<const char*>{"ca"}, std::vector<const char*>{"cb"},
                      std::vector<const char*>{"ca", "cb"}}) {
    Fixture f(source);
    ThreadContext ctx(f.rt);
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    for (const char* fn : events) {
      f.rt.OnFunctionReturn(ctx, S(fn), std::vector<int64_t>{2}, 0);
    }
    Binding site[] = {{0, 2}};
    f.rt.OnAssertionSite(ctx, f.id, site);
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
    EXPECT_EQ(f.rt.stats().violations, 0u) << events.size() << " branches fired";
  }
}

TEST(Runtime, InCallStackSatisfiesSite) {
  Fixture f(
      "TESLA_WITHIN(syscall, incallstack(inner) || previously(check(x) == 0))");
  {
    // Path 1: site reached while `inner` is on the stack — no check needed.
    ThreadContext ctx(f.rt);
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    f.rt.OnFunctionCall(ctx, S("inner"), {});
    Binding site[] = {{0, 1}};
    f.rt.OnAssertionSite(ctx, f.id, site);
    f.rt.OnFunctionReturn(ctx, S("inner"), {}, 0);
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
    EXPECT_EQ(f.rt.stats().violations, 0u);
  }
  {
    // Path 2: site reached outside `inner` and without the check — violation.
    ThreadContext ctx(f.rt);
    f.rt.ResetStats();
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    Binding site[] = {{0, 1}};
    f.rt.OnAssertionSite(ctx, f.id, site);
    EXPECT_EQ(f.rt.stats().violations, 1u);
  }
}

TEST(Runtime, FieldAssignEvents) {
  automata::LowerOptions lower;
  lower.constants["NEXT_STATE"] = 3;
  Fixture f("TESLA_WITHIN(syscall, previously(s.state = NEXT_STATE))", TestOptions(), lower);
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFieldStore(ctx, S("state"), /*object=*/100, /*old=*/0, /*new=*/3);
  Binding site[] = {{0, 100}};  // s = object 100
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);

  // Wrong value assigned: the site must fail for that object.
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFieldStore(ctx, S("state"), 100, 0, 2);
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(Runtime, CompoundFieldAssign) {
  Fixture f("TESLA_WITHIN(syscall, previously(s.count += 1))");
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFieldStore(ctx, S("count"), 200, 5, 6);  // += 1
  Binding site[] = {{0, 200}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFieldStore(ctx, S("count"), 200, 5, 9);  // += 4: no match
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(Runtime, IndirectArgumentBinding) {
  int64_t error_slot = 0;
  RuntimeOptions options = TestOptions();
  options.memory_reader = [&](int64_t address, int64_t* value) {
    if (address != reinterpret_cast<int64_t>(&error_slot)) {
      return false;
    }
    *value = error_slot;
    return true;
  };
  Fixture f("TESLA_WITHIN(syscall, previously(fetch(&err) == 1))", options);
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  error_slot = 42;
  f.rt.OnFunctionReturn(ctx, S("fetch"),
                        std::vector<int64_t>{reinterpret_cast<int64_t>(&error_slot)}, 1);
  Binding site[] = {{0, 42}};  // err = 42, read through the pointer
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(Runtime, LazyAndEagerModesAgree) {
  // Drive an identical pseudo-random event schedule through both modes and
  // compare observable outcomes.
  for (bool lazy : {false, true}) {
    RuntimeOptions options = TestOptions();
    options.lazy_init = lazy;
    Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);
    ThreadContext ctx(f.rt);

    uint64_t rng = 99;
    uint64_t violations = 0;
    for (int round = 0; round < 200; round++) {
      rng = rng * 6364136223846793005ull + 1;
      bool do_check = (rng >> 33) % 2 == 0;
      bool do_site = (rng >> 34) % 2 == 0;
      int64_t value = static_cast<int64_t>((rng >> 35) % 3);

      f.rt.OnFunctionCall(ctx, S("syscall"), {});
      if (do_check) {
        f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{value}, 0);
      }
      if (do_site) {
        Binding site[] = {{0, value}};
        f.rt.OnAssertionSite(ctx, f.id, site);
        if (!do_check) {
          violations++;
        }
      }
      f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
    }
    EXPECT_EQ(f.rt.stats().violations, violations) << "lazy=" << lazy;
  }
}

TEST(Runtime, DfaModeMatchesNfaMode) {
  for (bool use_dfa : {false, true}) {
    RuntimeOptions options = TestOptions();
    options.use_dfa = use_dfa;
    Fixture f("TESLA_WITHIN(syscall, previously(ca(x) == 0 || cb(x) == 0))", options);
    ThreadContext ctx(f.rt);

    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    f.rt.OnFunctionReturn(ctx, S("ca"), std::vector<int64_t>{1}, 0);
    f.rt.OnFunctionReturn(ctx, S("cb"), std::vector<int64_t>{1}, 0);
    Binding site[] = {{0, 1}};
    f.rt.OnAssertionSite(ctx, f.id, site);
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
    EXPECT_EQ(f.rt.stats().violations, 0u) << "use_dfa=" << use_dfa;

    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    f.rt.OnAssertionSite(ctx, f.id, site);
    EXPECT_EQ(f.rt.stats().violations, 1u) << "use_dfa=" << use_dfa;
  }
}

TEST(Runtime, GlobalContextSharedAcrossThreadContexts) {
  Fixture f("TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))");
  ThreadContext t1(f.rt);
  ThreadContext t2(f.rt);

  // The check happens on thread 1, the assertion site on thread 2: the global
  // store must connect them.
  f.rt.OnFunctionCall(t1, S("syscall"), {});
  f.rt.OnFunctionReturn(t1, S("check"), std::vector<int64_t>{8}, 0);
  Binding site[] = {{0, 8}};
  f.rt.OnAssertionSite(t2, f.id, site);
  f.rt.OnFunctionReturn(t2, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(Runtime, PerThreadContextsAreIsolated) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext t1(f.rt);
  ThreadContext t2(f.rt);

  f.rt.OnFunctionCall(t1, S("syscall"), {});
  f.rt.OnFunctionReturn(t1, S("check"), std::vector<int64_t>{8}, 0);

  // Thread 2 has its own bound and has not performed the check.
  f.rt.OnFunctionCall(t2, S("syscall"), {});
  Binding site[] = {{0, 8}};
  f.rt.OnAssertionSite(t2, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(Runtime, PoolOverflowIsReportedNotFatal) {
  RuntimeOptions options = TestOptions();
  options.instances_per_context = 2;  // wildcard + one clone
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  for (int64_t value = 0; value < 5; value++) {
    f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{value}, 0);
  }
  EXPECT_GE(f.rt.stats().overflows, 1u);
  EXPECT_EQ(f.rt.stats().instances_cloned, 1u);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(ctx.pool_overflows(), f.rt.stats().overflows);
}

TEST(Runtime, CountingHandlerAggregatesTransitions) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  for (int round = 0; round < 10; round++) {
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    f.rt.OnFunctionReturn(ctx, S("check"), std::vector<int64_t>{round}, 0);
    Binding site[] = {{0, round}};
    f.rt.OnAssertionSite(ctx, f.id, site);
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  }
  uint64_t total = 0;
  for (const auto& [key, count] : f.handler->CountsFor(f.id)) {
    total += count;
  }
  EXPECT_EQ(total, f.rt.stats().transitions);
  EXPECT_GT(total, 0u);
}

TEST(Runtime, FunctionScopeGuardsEmitCallAndReturn) {
  Fixture f("TESLA_WITHIN(outer, previously(helper(x) == 7))");
  ThreadContext ctx(f.rt);
  {
    runtime::FunctionScope outer(&f.rt, &ctx, S("outer"), {});
    {
      runtime::FunctionScope helper(&f.rt, &ctx, S("helper"), {11});
      helper.Return(7);
    }
    Binding site[] = {{0, 11}};
    f.rt.OnAssertionSite(ctx, f.id, site);
  }
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(Runtime, StoreFieldHelperFiresEvent) {
  Fixture f("TESLA_WITHIN(outer, previously(s.flags = 4))");
  ThreadContext ctx(f.rt);
  int64_t flags = 0;
  {
    runtime::FunctionScope outer(&f.rt, &ctx, S("outer"), {});
    runtime::StoreField(&f.rt, &ctx, S("flags"), /*object=*/55, &flags, int64_t{4});
    EXPECT_EQ(flags, 4);
    Binding site[] = {{0, 55}};
    f.rt.OnAssertionSite(ctx, f.id, site);
  }
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(Runtime, MultipleAutomataShareBound) {
  automata::Manifest manifest;
  for (int i = 0; i < 10; i++) {
    auto automaton = CompileAssertion(
        "TESLA_WITHIN(syscall, previously(check" + std::to_string(i) + "(x) == 0))", {},
        "auto" + std::to_string(i));
    ASSERT_TRUE(automaton.ok());
    manifest.Add(std::move(automaton.value()));
  }
  Runtime rt(TestOptions());
  ASSERT_TRUE(rt.Register(manifest).ok());
  ThreadContext ctx(rt);

  rt.OnFunctionCall(ctx, S("syscall"), {});
  rt.OnFunctionReturn(ctx, S("check3"), std::vector<int64_t>{1}, 0);
  Binding site[] = {{0, 1}};
  rt.OnAssertionSite(ctx, static_cast<uint32_t>(rt.FindAutomaton("auto3")), site);
  rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(rt.stats().violations, 0u);

  // Only the automaton that saw events was instantiated in lazy mode.
  EXPECT_EQ(rt.stats().instances_created, 1u);
}

}  // namespace
}  // namespace tesla
