#include "runtime/coverage.h"

#include <gtest/gtest.h>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "runtime/runtime.h"

namespace tesla {
namespace {

using runtime::Binding;
using runtime::CountingHandler;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::ThreadContext;

RuntimeOptions TestOptions() {
  RuntimeOptions options;
  options.fail_stop = false;
  return options;
}

Symbol S(const char* name) { return InternString(name); }

struct Fixture {
  Fixture() : rt(TestOptions()) {
    auto automaton = automata::CompileAssertion(
        "TESLA_WITHIN(syscall, previously(check(x) == 0))", {}, "cov");
    EXPECT_TRUE(automaton.ok());
    automata::Manifest manifest;
    manifest.Add(std::move(automaton.value()));
    EXPECT_TRUE(rt.Register(manifest).ok());
    rt.AddHandler(&counter);
    id = static_cast<uint32_t>(rt.FindAutomaton("cov"));
  }
  Runtime rt;
  CountingHandler counter;
  uint32_t id = 0;
};

TEST(Coverage, UnexercisedAutomatonHasZeroCoverage) {
  Fixture f;
  auto report =
      runtime::ComputeCoverage(f.rt.automaton(f.id), f.rt.dfa(f.id), f.counter, f.id);
  EXPECT_GT(report.total_transitions, 0u);
  EXPECT_EQ(report.covered_transitions, 0u);
  EXPECT_EQ(report.Ratio(), 0.0);
}

TEST(Coverage, PartialExecutionShowsPartialCoverage) {
  Fixture f;
  ThreadContext ctx(f.rt);
  // A bound with a check but no site visit: the init/check/bypass-cleanup
  // path is covered, the site path is not. (Note that under lazy init a
  // bound with no events at all would leave the automaton untouched and the
  // coverage at zero.)
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {1};
  f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  auto report =
      runtime::ComputeCoverage(f.rt.automaton(f.id), f.rt.dfa(f.id), f.counter, f.id);
  EXPECT_GT(report.covered_transitions, 0u);
  EXPECT_LT(report.covered_transitions, report.total_transitions);

  // Covered transitions sort first and carry counts.
  ASSERT_FALSE(report.transitions.empty());
  EXPECT_GT(report.transitions.front().count, 0u);
  EXPECT_EQ(report.transitions.back().count, 0u);
}

TEST(Coverage, FullPathRaisesCoverage) {
  Fixture f;
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);  // bypass path

  auto bypass_only =
      runtime::ComputeCoverage(f.rt.automaton(f.id), f.rt.dfa(f.id), f.counter, f.id);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {3};
  f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  Binding site[] = {{0, 3}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);  // full path

  auto full = runtime::ComputeCoverage(f.rt.automaton(f.id), f.rt.dfa(f.id), f.counter, f.id);
  EXPECT_GT(full.covered_transitions, bypass_only.covered_transitions);
  EXPECT_GT(full.Ratio(), 0.5);

  std::string text = full.ToString();
  EXPECT_NE(text.find("coverage for 'cov'"), std::string::npos);
  EXPECT_NE(text.find("NFA:"), std::string::npos);
}

TEST(Coverage, WeightsFeedDotRendering) {
  Fixture f;
  ThreadContext ctx(f.rt);
  for (int i = 0; i < 42; i++) {
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    int64_t args[] = {i};
    f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  }
  auto weights = runtime::CoverageWeights(f.rt.dfa(f.id), f.counter, f.id);
  uint64_t total = 0;
  for (const auto& [key, count] : weights) {
    total += count;
  }
  EXPECT_EQ(total, f.rt.stats().transitions);

  std::string dot = automata::ToDot(f.rt.automaton(f.id), f.rt.dfa(f.id), &weights);
  EXPECT_NE(dot.find("(42)"), std::string::npos);
}

}  // namespace
}  // namespace tesla
