// Property-style tests: randomised event schedules checked against
// independent oracles, and cross-mode equivalence sweeps (eager vs lazy
// initialisation, NFA state-set vs DFA stepping).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "parser/parser.h"
#include "support/hash.h"
#include "support/pool.h"
#include "runtime/runtime.h"

namespace tesla {
namespace {

using automata::CompileAssertion;
using runtime::Binding;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::ThreadContext;

RuntimeOptions TestOptions(bool lazy = true, bool use_dfa = false) {
  RuntimeOptions options;
  options.fail_stop = false;
  options.lazy_init = lazy;
  options.use_dfa = use_dfa;
  return options;
}

Symbol S(const char* name) { return InternString(name); }

// A deterministic PRNG so failures reproduce.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
  int Below(int n) { return static_cast<int>(Next() % static_cast<uint64_t>(n)); }
};

// ---------------------------------------------------------------------------
// Oracle 1: previously(check(x) == 0).
// A bound's site event with binding v is satisfied iff check(v) returned 0
// earlier within the same bound.
// ---------------------------------------------------------------------------

struct PreviouslyOracle {
  std::set<int64_t> checked;
  uint64_t violations = 0;

  void OnBoundStart() { checked.clear(); }
  void OnCheck(int64_t value, int64_t result) {
    if (result == 0) {
      checked.insert(value);
    }
  }
  void OnSite(int64_t value) {
    if (checked.count(value) == 0) {
      violations++;
    }
  }
};

class ModeSweep : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

TEST_P(ModeSweep, PreviouslyMatchesOracleOnRandomSchedules) {
  auto [lazy, use_dfa, seed] = GetParam();
  Runtime rt(TestOptions(lazy, use_dfa));
  auto automaton = CompileAssertion("TESLA_WITHIN(syscall, previously(check(x) == 0))", {},
                                    "prop");
  ASSERT_TRUE(automaton.ok());
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  ASSERT_TRUE(rt.Register(manifest).ok());
  ThreadContext ctx(rt);
  uint32_t id = static_cast<uint32_t>(rt.FindAutomaton("prop"));

  PreviouslyOracle oracle;
  Rng rng(static_cast<uint64_t>(seed));
  for (int bound = 0; bound < 300; bound++) {
    rt.OnFunctionCall(ctx, S("syscall"), {});
    oracle.OnBoundStart();
    int actions = rng.Below(6);
    for (int a = 0; a < actions; a++) {
      int64_t value = rng.Below(4);
      switch (rng.Below(3)) {
        case 0: {  // successful check
          int64_t args[] = {value};
          rt.OnFunctionReturn(ctx, S("check"), args, 0);
          oracle.OnCheck(value, 0);
          break;
        }
        case 1: {  // failed check — must not satisfy the assertion
          int64_t args[] = {value};
          rt.OnFunctionReturn(ctx, S("check"), args, -1);
          oracle.OnCheck(value, -1);
          break;
        }
        case 2: {  // assertion site
          Binding site[] = {{0, value}};
          rt.OnAssertionSite(ctx, id, site);
          oracle.OnSite(value);
          break;
        }
      }
    }
    rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  }
  EXPECT_EQ(rt.stats().violations, oracle.violations)
      << "lazy=" << lazy << " dfa=" << use_dfa << " seed=" << seed;
}

// ---------------------------------------------------------------------------
// Oracle 2: eventually(audit(x) == 0).
// A bound is violated once per site-bound value v that is never audited
// before the bound closes.
// ---------------------------------------------------------------------------

TEST_P(ModeSweep, EventuallyMatchesOracleOnRandomSchedules) {
  auto [lazy, use_dfa, seed] = GetParam();
  Runtime rt(TestOptions(lazy, use_dfa));
  auto automaton = CompileAssertion("TESLA_WITHIN(syscall, eventually(audit(x) == 0))", {},
                                    "prop");
  ASSERT_TRUE(automaton.ok());
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  ASSERT_TRUE(rt.Register(manifest).ok());
  ThreadContext ctx(rt);
  uint32_t id = static_cast<uint32_t>(rt.FindAutomaton("prop"));

  uint64_t expected_violations = 0;
  Rng rng(static_cast<uint64_t>(seed) ^ 0xabcdef);
  for (int bound = 0; bound < 300; bound++) {
    rt.OnFunctionCall(ctx, S("syscall"), {});
    std::set<int64_t> pending;  // site reached, audit still owed
    int actions = rng.Below(6);
    for (int a = 0; a < actions; a++) {
      int64_t value = rng.Below(3);
      if (rng.Below(2) == 0) {
        Binding site[] = {{0, value}};
        rt.OnAssertionSite(ctx, id, site);
        pending.insert(value);
      } else {
        int64_t args[] = {value};
        rt.OnFunctionReturn(ctx, S("audit"), args, 0);
        pending.erase(value);
      }
    }
    rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
    expected_violations += pending.size();
  }
  EXPECT_EQ(rt.stats().violations, expected_violations)
      << "lazy=" << lazy << " dfa=" << use_dfa << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ModeSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 2, 3, 17, 99)),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool, int>>& info) {
      return std::string(std::get<0>(info.param) ? "lazy" : "eager") +
             (std::get<1>(info.param) ? "Dfa" : "Nfa") + "Seed" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// NFA/DFA agreement on arbitrary symbol strings, over a family of assertions.
// ---------------------------------------------------------------------------

class NfaDfaAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(NfaDfaAgreement, SubsetConstructionIsExact) {
  auto automaton = CompileAssertion(GetParam());
  ASSERT_TRUE(automaton.ok()) << GetParam() << ": " << automaton.error().ToString();
  automata::Dfa dfa = automata::Determinize(*automaton);

  const size_t symbols = automaton->alphabet.size();
  Rng rng(FnvHashString(GetParam()));
  for (int trial = 0; trial < 300; trial++) {
    automata::StateSet nfa = automata::StateBit(automaton->initial_state);
    uint32_t state = 0;
    for (int step = 0; step < 16; step++) {
      uint16_t symbol = static_cast<uint16_t>(rng.Below(static_cast<int>(symbols)));
      automata::StateSet nfa_next = automaton->Step(nfa, symbol);
      uint32_t dfa_next = dfa.Step(state, symbol);
      ASSERT_EQ(nfa_next == 0, dfa_next == automata::Dfa::kNoTarget)
          << GetParam() << " trial " << trial;
      if (nfa_next == 0) {
        break;
      }
      ASSERT_EQ(dfa.states[dfa_next].nfa_states, nfa_next);
      nfa = nfa_next;
      state = dfa_next;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AssertionFamily, NfaDfaAgreement,
    ::testing::Values(
        "TESLA_WITHIN(f, previously(a(x) == 0))",
        "TESLA_WITHIN(f, eventually(b(x) == 1))",
        "TESLA_WITHIN(f, TSEQUENCE(a(), b(), c()))",
        "TESLA_WITHIN(f, previously(a(x) == 0 || b(x) == 0))",
        "TESLA_WITHIN(f, previously(a(x) == 0 ^ b(x) == 0))",
        "TESLA_WITHIN(f, TSEQUENCE(a(), optional(b()), c()))",
        "TESLA_WITHIN(f, previously(ATLEAST(0, p(), q())))",
        "TESLA_WITHIN(f, TSEQUENCE(ATLEAST(2, t()), d()))",
        "TESLA_WITHIN(f, incallstack(g) || previously(a(x) == 0))",
        "TESLA_WITHIN(f, previously(TSEQUENCE(a(), b()) || c(x) == 0))",
        "TESLA_GLOBAL(call(f), returnfrom(g), eventually(h(x) == 0))",
        "TESLA_WITHIN(f, s.field = 3)",
        "TESLA_WITHIN(f, TSEQUENCE(s.n++, s.n--))"));

// ---------------------------------------------------------------------------
// Manifest round-trips for generated assertions.
// ---------------------------------------------------------------------------

class ManifestRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ManifestRoundTrip, GeneratedAssertionsSurviveSerialisation) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  automata::LowerOptions lower;
  lower.flags["F_A"] = 0x1;
  lower.flags["F_B"] = 0x2;
  lower.constants["K"] = 42;

  automata::Manifest manifest;
  for (int i = 0; i < 10; i++) {
    // Compose a random assertion from grammar fragments.
    const char* values[] = {"ANY(int)", "x", "7", "flags(F_A | F_B)", "bitmask(F_A)", "K", "&p"};
    const char* shapes[] = {
        "previously(fn%d(%s) == 0)",
        "eventually(fn%d(%s) == 1)",
        "TSEQUENCE(fn%d(%s), other%d())",
        "previously(fn%d(%s) == 0 || alt%d(x) == 0)",
        "optional(fn%d(%s))",
    };
    char expr[256];
    std::snprintf(expr, sizeof(expr), shapes[rng.Below(5)], i, values[rng.Below(7)], i);
    std::string source = "TESLA_WITHIN(bound" + std::to_string(rng.Below(3)) + ", " + expr + ")";
    auto automaton = CompileAssertion(source, lower, "gen" + std::to_string(i));
    ASSERT_TRUE(automaton.ok()) << source << ": " << automaton.error().ToString();
    manifest.Add(std::move(automaton.value()));
  }

  std::string text = manifest.Serialize();
  auto parsed = automata::Manifest::Deserialize(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed->automata.size(), manifest.automata.size());
  for (size_t i = 0; i < manifest.automata.size(); i++) {
    EXPECT_EQ(parsed->automata[i].alphabet, manifest.automata[i].alphabet) << i;
    EXPECT_EQ(parsed->automata[i].transitions, manifest.automata[i].transitions) << i;
    EXPECT_EQ(parsed->automata[i].variables, manifest.automata[i].variables) << i;
  }
  EXPECT_EQ(parsed->Serialize(), text) << "serialisation must be a fixpoint";

  // A freshly-registered runtime must accept the round-tripped manifest.
  Runtime rt(TestOptions());
  EXPECT_TRUE(rt.Register(*parsed).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManifestRoundTrip, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Parser robustness: mutated inputs must error, never crash.
// ---------------------------------------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, MutatedAssertionsFailGracefully) {
  const std::string base =
      "TESLA_WITHIN(enclosing_fn, previously(security_check(ANY(ptr), o, op) == 0))";
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 200; trial++) {
    std::string mutated = base;
    int mutations = 1 + rng.Below(3);
    for (int m = 0; m < mutations; m++) {
      int position = rng.Below(static_cast<int>(mutated.size()));
      switch (rng.Below(3)) {
        case 0:
          mutated.erase(position, 1);
          break;
        case 1:
          mutated.insert(position, 1, "(),=|^&.x0"[rng.Below(10)]);
          break;
        case 2:
          mutated[position] = "(),=|^&.x0"[rng.Below(10)];
          break;
      }
    }
    // Must either parse (some mutations are harmless) or produce a located
    // diagnostic — never crash or hang.
    auto result = parser::ParseAssertion(mutated);
    if (!result.ok()) {
      EXPECT_GE(result.error().line, 0);
    } else {
      // Anything that parses must also lower (or fail cleanly).
      auto lowered = automata::Lower(result.value());
      (void)lowered;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Pool invariants under random alloc/free interleavings.
// ---------------------------------------------------------------------------

class PoolSweep : public ::testing::TestWithParam<int> {};

TEST_P(PoolSweep, NeverExceedsCapacityAndRecyclesEverything) {
  const size_t capacity = 1 + static_cast<size_t>(GetParam()) % 13;
  FixedPool<int64_t> pool(capacity);
  std::vector<int64_t*> live;
  Rng rng(static_cast<uint64_t>(GetParam()));
  uint64_t expected_overflows = 0;
  for (int step = 0; step < 2000; step++) {
    if (rng.Below(2) == 0) {
      int64_t* object = pool.Allocate(step);
      if (live.size() >= capacity) {
        EXPECT_EQ(object, nullptr);
        expected_overflows++;
      } else {
        ASSERT_NE(object, nullptr);
        EXPECT_EQ(*object, step);
        live.push_back(object);
      }
    } else if (!live.empty()) {
      size_t index = static_cast<size_t>(rng.Below(static_cast<int>(live.size())));
      pool.Free(live[index]);
      live.erase(live.begin() + static_cast<long>(index));
    }
    EXPECT_LE(pool.live(), capacity);
  }
  EXPECT_EQ(pool.overflows(), expected_overflows);
  for (int64_t* object : live) {
    pool.Free(object);
  }
  EXPECT_EQ(pool.live(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, PoolSweep, ::testing::Range(1, 10));

}  // namespace
}  // namespace tesla
