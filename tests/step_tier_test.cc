// Differential coverage for the compiled stepping tiers (runtime/step.h):
// interpreted, threaded-bytecode and shape-specialised kernels must be
// semantically indistinguishable. Identical pseudo-random schedules drive one
// runtime per tier and compare, after every event, the full RuntimeStats
// schema (via the TESLA_RUNTIME_STATS X-macro, so a new counter is compared
// the day it is added) and the violation sequences; at the end of each
// schedule the transition-coverage bitmaps must be bit-identical. The IR
// lowering is cross-validated separately: the emitted step function,
// evaluated by the IR interpreter, must agree with Dfa::Step everywhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/determinize.h"
#include "automata/lower.h"
#include "automata/manifest.h"
#include "automata/stepc.h"
#include "ir/interp.h"
#include "ir/stepemit.h"
#include "metrics/collector.h"
#include "runtime/handler.h"
#include "runtime/runtime.h"

namespace tesla {
namespace {

using automata::CompileAssertion;
using runtime::Binding;
using runtime::CountingHandler;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::RuntimeStats;
using runtime::StepTier;
using runtime::ThreadContext;
using runtime::Violation;

Symbol S(const char* name) { return InternString(name); }

constexpr StepTier kAllTiers[] = {StepTier::kInterpreted, StepTier::kThreaded,
                                  StepTier::kSpecialised};

const char* TierName(StepTier tier) {
  switch (tier) {
    case StepTier::kInterpreted:
      return "interpreted";
    case StepTier::kThreaded:
      return "threaded";
    case StepTier::kSpecialised:
      return "specialised";
  }
  return "?";
}

// One runtime + counting handler compiled from `source` at a given tier.
struct Side {
  Side(const std::string& source, RuntimeOptions options, StepTier tier) : rt([&] {
    options.step_tier = tier;
    return options;
  }()) {
    auto automaton = CompileAssertion(source, {}, "tier");
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    automata::Manifest manifest;
    manifest.Add(std::move(automaton.value()));
    EXPECT_TRUE(rt.Register(manifest).ok());
    id = static_cast<uint32_t>(rt.FindAutomaton("tier"));
    rt.AddHandler(&handler);
    ctx = std::make_unique<ThreadContext>(rt);
  }
  Runtime rt;
  CountingHandler handler;
  std::unique_ptr<ThreadContext> ctx;
  uint32_t id = 0;
};

RuntimeOptions BaseOptions(bool metrics) {
  RuntimeOptions options;
  options.fail_stop = false;
  if (metrics) {
    options.metrics_mode = metrics::MetricsMode::kCounters;
  }
  return options;
}

// Three runtimes — one per tier — driven in lockstep. The interpreted tier
// (index 0) is the reference the others are compared against.
struct TierSet {
  explicit TierSet(const std::string& source, RuntimeOptions options = BaseOptions(true)) {
    for (StepTier tier : kAllTiers) {
      sides.push_back(std::make_unique<Side>(source, options, tier));
    }
  }

  void CheckStats(const char* where) {
    const RuntimeStats& ref = sides[0]->rt.stats();
    for (size_t t = 1; t < sides.size(); t++) {
      const RuntimeStats& got = sides[t]->rt.stats();
      const char* tier = TierName(kAllTiers[t]);
#define TESLA_TIER_CHECK(name, desc, replay) \
  ASSERT_EQ(got.name, ref.name) << where << " [" << tier << "] " << #name;
      TESLA_RUNTIME_STATS(TESLA_TIER_CHECK)
#undef TESLA_TIER_CHECK

      const std::vector<Violation>& va = sides[0]->handler.violations();
      const std::vector<Violation>& vb = sides[t]->handler.violations();
      ASSERT_EQ(vb.size(), va.size()) << where << " [" << tier << "]";
      for (size_t i = 0; i < va.size(); i++) {
        ASSERT_EQ(vb[i].kind, va[i].kind) << where << " [" << tier << "] violation " << i;
      }
    }
  }

  // The tier-invariance contract on coverage: bit-identical bitmaps.
  void CheckCoverage(const char* where) {
    const metrics::Collector* ref = sides[0]->rt.collector();
    ASSERT_NE(ref, nullptr) << where;
    for (size_t t = 1; t < sides.size(); t++) {
      const metrics::Collector* got = sides[t]->rt.collector();
      const char* tier = TierName(kAllTiers[t]);
      ASSERT_EQ(got->coverage_bits(), ref->coverage_bits()) << where << " [" << tier << "]";
      for (size_t bit = 0; bit < ref->coverage_bits(); bit++) {
        ASSERT_EQ(got->CoverageBit(static_cast<uint32_t>(bit)),
                  ref->CoverageBit(static_cast<uint32_t>(bit)))
            << where << " [" << tier << "] coverage bit " << bit;
      }
    }
  }

  std::vector<std::unique_ptr<Side>> sides;
};

// ---------------------------------------------------------------------------
// Randomized lockstep schedules, one per kernel shape.

// Small DFA-trackable class: the specialised tier takes the packed
// (table-in-registers) kernel, the threaded tier a DFA-semantics program.
TEST(StepTier, SmallDfaClassAgrees) {
  TierSet tiers("TESLA_WITHIN(syscall, previously(check(x) == 0))");

  uint64_t rng = 99;
  for (int round = 0; round < 500; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 4);
    int64_t value = static_cast<int64_t>((rng >> 40) % 5);
    int64_t args[] = {value};
    Binding site[] = {{0, value}};

    for (auto& s : tiers.sides) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("check"), args, 0);
          break;
        case 2:
          s->rt.OnAssertionSite(*s->ctx, s->id, site);
          break;
        case 3:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    tiers.CheckStats("round");
  }
  tiers.CheckCoverage("final");
  ASSERT_GT(tiers.sides[0]->rt.stats().transitions, 0u);
  ASSERT_GT(tiers.sides[0]->rt.stats().violations, 0u);  // the schedule bites
}

// Wide alternation: ~19 DFA states exceed the packed kernel's budget, so the
// specialised tier falls back to the flat-row kernel and the threaded tier
// emits chain/row ops.
TEST(StepTier, WideAlternationAgrees) {
  TierSet tiers(
      "TESLA_WITHIN(syscall, previously(c0(x) == 0 || c1(x) == 0 || c2(x) == 0 || "
      "c3(x) == 0))");

  uint64_t rng = 1234;
  for (int round = 0; round < 500; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 7);
    int64_t value = static_cast<int64_t>((rng >> 40) % 4);
    int64_t args[] = {value};
    Binding site[] = {{0, value}};
    static const char* const kChecks[] = {"c0", "c1", "c2", "c3"};

    for (auto& s : tiers.sides) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
        case 2:
        case 3:
        case 4:
          s->rt.OnFunctionReturn(*s->ctx, S(kChecks[action - 1]), args, 0);
          break;
        case 5:
          s->rt.OnAssertionSite(*s->ctx, s->id, site);
          break;
        case 6:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    tiers.CheckStats("round");
  }
  tiers.CheckCoverage("final");
  ASSERT_GT(tiers.sides[0]->rt.stats().transitions, 0u);
}

// incallstack() site variants force multi-symbol NFA stepping: the
// specialised tier runs the mask-and-union kernel, the threaded tier the
// NFA bytecode program.
TEST(StepTier, InCallStackClassAgrees) {
  TierSet tiers("TESLA_WITHIN(f, incallstack(g) || previously(a(x) == 0))");

  uint64_t rng = 777;
  int depth = 0;
  for (int round = 0; round < 500; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 6);
    if (action == 5 && depth == 0) {
      action = 4;  // nothing to return from; push instead
    }
    int64_t value = static_cast<int64_t>((rng >> 40) % 4);
    int64_t args[] = {value};
    Binding site[] = {{0, value}};

    for (auto& s : tiers.sides) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("f"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("f"), {}, 0);
          break;
        case 2:
          s->rt.OnFunctionReturn(*s->ctx, S("a"), args, 0);
          break;
        case 3:
          s->rt.OnAssertionSite(*s->ctx, s->id, site);
          break;
        case 4:
          s->rt.OnFunctionCall(*s->ctx, S("g"), {});
          break;
        case 5:
          s->rt.OnFunctionReturn(*s->ctx, S("g"), {}, 0);
          break;
      }
    }
    if (action == 4) {
      depth++;
    } else if (action == 5) {
      depth--;
    }
    tiers.CheckStats("round");
  }
  tiers.CheckCoverage("final");
  ASSERT_GT(tiers.sides[0]->rt.stats().transitions, 0u);
}

// The use_dfa ablation must stay tier-invariant too (every tier then runs
// DFA-semantics stepping directly).
TEST(StepTier, UseDfaAblationAgrees) {
  RuntimeOptions options = BaseOptions(true);
  options.use_dfa = true;
  TierSet tiers("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);

  uint64_t rng = 31;
  for (int round = 0; round < 400; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 4);
    int64_t value = static_cast<int64_t>((rng >> 40) % 3);
    int64_t args[] = {value};
    Binding site[] = {{0, value}};

    for (auto& s : tiers.sides) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("check"), args, 0);
          break;
        case 2:
          s->rt.OnAssertionSite(*s->ctx, s->id, site);
          break;
        case 3:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    tiers.CheckStats("round");
  }
  tiers.CheckCoverage("final");
}

// Metrics off: the non-stamping kernel variants are selected; verdicts and
// stats must still agree (there is no coverage to compare).
TEST(StepTier, MetricsOffAgrees) {
  TierSet tiers("TESLA_WITHIN(syscall, previously(check(x) == 0))", BaseOptions(false));

  uint64_t rng = 4711;
  for (int round = 0; round < 400; round++) {
    rng = rng * 6364136223846793005ull + 1;
    int action = static_cast<int>((rng >> 33) % 4);
    int64_t value = static_cast<int64_t>((rng >> 40) % 5);
    int64_t args[] = {value};
    Binding site[] = {{0, value}};

    for (auto& s : tiers.sides) {
      switch (action) {
        case 0:
          s->rt.OnFunctionCall(*s->ctx, S("syscall"), {});
          break;
        case 1:
          s->rt.OnFunctionReturn(*s->ctx, S("check"), args, 0);
          break;
        case 2:
          s->rt.OnAssertionSite(*s->ctx, s->id, site);
          break;
        case 3:
          s->rt.OnFunctionReturn(*s->ctx, S("syscall"), {}, 0);
          break;
      }
    }
    tiers.CheckStats("round");
  }
}

// Global (sharded) storage exercises the batch/lock paths around the
// kernels; batch ingestion exercises the stats-frame flush.
TEST(StepTier, GlobalContextBatchAgrees) {
  TierSet tiers("TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))");

  uint64_t rng = 2025;
  std::vector<runtime::Event> batch;
  for (int round = 0; round < 120; round++) {
    batch.clear();
    for (int i = 0; i < 8; i++) {
      rng = rng * 6364136223846793005ull + 1;
      int action = static_cast<int>((rng >> 33) % 4);
      int64_t value = static_cast<int64_t>((rng >> 40) % 4);
      int64_t args[] = {value};
      Binding site[] = {{0, value}};
      switch (action) {
        case 0:
          batch.push_back(runtime::Event::Call(S("syscall"), {}));
          break;
        case 1:
          batch.push_back(runtime::Event::Return(S("check"), args, 0));
          break;
        case 2:
          batch.push_back(runtime::Event::Site(tiers.sides[0]->id, site));
          break;
        case 3:
          batch.push_back(runtime::Event::Return(S("syscall"), {}, 0));
          break;
      }
    }
    for (auto& s : tiers.sides) {
      s->rt.OnEvents(*s->ctx, batch);
    }
    tiers.CheckStats("batch");
  }
  tiers.CheckCoverage("final");
  ASSERT_GT(tiers.sides[0]->rt.stats().transitions, 0u);
}

// ---------------------------------------------------------------------------
// IR lowering cross-validation: the emitted step function, run through the
// IR interpreter, must agree with Dfa::Step on every (state, symbol) pair —
// including the dead symbols the emission prunes.

TEST(StepTier, EmittedIrStepMatchesDfa) {
  const char* sources[] = {
      "TESLA_WITHIN(syscall, previously(check(x) == 0))",
      "TESLA_WITHIN(syscall, previously(c0(x) == 0 || c1(x) == 0 || c2(x) == 0 || "
      "c3(x) == 0))",
      "TESLA_WITHIN(f, incallstack(g) || previously(a(x) == 0))",
  };
  for (const char* source : sources) {
    auto compiled = CompileAssertion(source, {}, "emit");
    ASSERT_TRUE(compiled.ok()) << compiled.error().ToString();
    automata::Automaton automaton = std::move(compiled.value());
    automaton.Finalize();
    const automata::Dfa dfa = automata::Determinize(automaton);
    const automata::StepLowering lowering = automata::LowerStep(automaton, dfa);

    ir::Module module;
    ir::EmitStepFunction(module, lowering, "step");
    ASSERT_TRUE(ir::Verify(module).ok()) << source;

    ir::Interpreter interp(module);
    for (uint32_t state = 0; state < lowering.dfa_state_count; state++) {
      for (uint16_t symbol = 0; symbol < lowering.symbol_count; symbol++) {
        const uint32_t expect = dfa.Step(state, symbol);
        auto got = interp.Call("step", {static_cast<int64_t>(state),
                                        static_cast<int64_t>(symbol)});
        ASSERT_TRUE(got.ok()) << source;
        const int64_t want = expect == automata::Dfa::kNoTarget
                                 ? ir::kStepMiss
                                 : static_cast<int64_t>(expect);
        ASSERT_EQ(got.value(), want)
            << source << " state=" << state << " symbol=" << symbol;
      }
    }
  }
}

}  // namespace
}  // namespace tesla
