#include <gtest/gtest.h>

#include "cfront/cfront.h"
#include "ir/interp.h"

namespace tesla::cfront {
namespace {

// Compiles `source` and calls `entry`.
int64_t RunSource(const std::string& source, const std::string& entry,
            std::vector<int64_t> args = {}) {
  Compiler compiler;
  auto status = compiler.AddUnit(source, "test.c");
  EXPECT_TRUE(status.ok()) << status.error().ToString();
  auto verify = ir::Verify(compiler.module());
  EXPECT_TRUE(verify.ok()) << verify.error().ToString();
  ir::Interpreter interp(compiler.module());
  auto result = interp.Call(entry, std::move(args));
  EXPECT_TRUE(result.ok()) << result.error().ToString();
  return result.ok() ? *result : INT64_MIN;
}

TEST(Cfront, ArithmeticAndLocals) {
  EXPECT_EQ(RunSource("int f(int a, int b) { int c = a * b; return c + 2; }", "f", {5, 8}), 42);
}

TEST(Cfront, OperatorPrecedence) {
  EXPECT_EQ(RunSource("int f() { return 2 + 3 * 4; }", "f"), 14);
  EXPECT_EQ(RunSource("int f() { return (2 + 3) * 4; }", "f"), 20);
  EXPECT_EQ(RunSource("int f() { return 10 - 2 - 3; }", "f"), 5);  // left associative
  EXPECT_EQ(RunSource("int f() { return 7 % 3 + 10 / 2; }", "f"), 6);
}

TEST(Cfront, ComparisonsAndLogical) {
  EXPECT_EQ(RunSource("int f(int a) { return a > 3 && a < 10; }", "f", {5}), 1);
  EXPECT_EQ(RunSource("int f(int a) { return a > 3 && a < 10; }", "f", {11}), 0);
  EXPECT_EQ(RunSource("int f(int a) { return a == 1 || a == 2; }", "f", {2}), 1);
  EXPECT_EQ(RunSource("int f(int a) { return !a; }", "f", {0}), 1);
  EXPECT_EQ(RunSource("int f(int a) { return -a; }", "f", {5}), -5);
}

TEST(Cfront, IfElse) {
  const char* source = "int f(int a) { if (a > 0) { return 1; } else { return 2; } }";
  EXPECT_EQ(RunSource(source, "f", {5}), 1);
  EXPECT_EQ(RunSource(source, "f", {-5}), 2);
}

TEST(Cfront, IfWithoutElse) {
  const char* source = "int f(int a) { int r = 0; if (a > 0) { r = 7; } return r; }";
  EXPECT_EQ(RunSource(source, "f", {1}), 7);
  EXPECT_EQ(RunSource(source, "f", {0}), 0);
}

TEST(Cfront, WhileLoop) {
  const char* source =
      "int f(int n) { int sum = 0; int i = 1; "
      "while (i <= n) { sum = sum + i; i = i + 1; } return sum; }";
  EXPECT_EQ(RunSource(source, "f", {10}), 55);
  EXPECT_EQ(RunSource(source, "f", {0}), 0);
}

TEST(Cfront, FunctionCalls) {
  const char* source =
      "int square(int x) { return x * x; }\n"
      "int f(int a) { return square(a) + square(a + 1); }";
  EXPECT_EQ(RunSource(source, "f", {3}), 25);
}

TEST(Cfront, Recursion) {
  const char* source = "int fib(int n) { if (n < 2) { return n; } "
                       "return fib(n - 1) + fib(n - 2); }";
  EXPECT_EQ(RunSource(source, "fib", {10}), 55);
}

TEST(Cfront, StructsAllocAndFields) {
  const char* source =
      "struct point { int x; int y; };\n"
      "int f() { struct point *p = alloc(point); p->x = 4; p->y = 5;\n"
      "  p->x += 2; p->y++; return p->x * 10 + p->y; }";
  EXPECT_EQ(RunSource(source, "f"), 66);
}

TEST(Cfront, StructFieldDecrementAndCompound) {
  const char* source =
      "struct s { int n; };\n"
      "int f() { struct s *p = alloc(s); p->n = 10; p->n -= 3; p->n--; return p->n; }";
  EXPECT_EQ(RunSource(source, "f"), 6);
}

TEST(Cfront, CrossUnitCalls) {
  Compiler compiler;
  ASSERT_TRUE(compiler.AddUnit("int helper(int x) { return x * 2; }", "lib.c").ok());
  ASSERT_TRUE(compiler.AddUnit("int main_fn() { return helper(21); }", "main.c").ok());
  ir::Interpreter interp(compiler.module());
  auto result = interp.Call("main_fn");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(Cfront, CommentsAreSkipped) {
  EXPECT_EQ(RunSource("int f() { /* block\ncomment */ return 1; // line\n }", "f"), 1);
}

TEST(Cfront, TeslaAssertionProducesManifestAndSite) {
  const char* source =
      "int check(int x) { return 0; }\n"
      "int enclosing(int o) {\n"
      "  int r = check(o);\n"
      "  TESLA_WITHIN(enclosing, previously(check(o) == 0));\n"
      "  return r;\n"
      "}";
  Compiler compiler;
  auto status = compiler.AddUnit(source, "unit.c");
  ASSERT_TRUE(status.ok()) << status.error().ToString();
  ASSERT_EQ(compiler.manifest().automata.size(), 1u);
  EXPECT_EQ(compiler.manifest().automata[0].name, "unit.c:4");
  ASSERT_EQ(compiler.sites().size(), 1u);
  // The site call passes the in-scope `o` for automaton variable 0.
  EXPECT_EQ(compiler.sites()[0].var_indices, std::vector<uint16_t>{0});

  // The uninstrumented pseudo-call must not break execution: bind a no-op.
  ir::Interpreter interp(compiler.module());
  interp.BindHost(kInlineAssertionFn, [](std::span<const int64_t>) { return 0; });
  auto result = interp.Call("enclosing", {7});
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(*result, 0);
}

TEST(Cfront, SyntaxErrorsCarryUnitName) {
  Compiler compiler;
  auto status = compiler.AddUnit("int f( {", "broken.c");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("broken.c"), std::string::npos);
}

TEST(Cfront, UnknownVariableRejected) {
  Compiler compiler;
  EXPECT_FALSE(compiler.AddUnit("int f() { return nope; }", "u.c").ok());
}

TEST(Cfront, UnknownStructRejected) {
  Compiler compiler;
  EXPECT_FALSE(compiler.AddUnit("int f() { struct nope *p = 0; return 0; }", "u.c").ok());
}

TEST(Cfront, MalformedAssertionRejected) {
  Compiler compiler;
  EXPECT_FALSE(
      compiler.AddUnit("int f() { TESLA_WITHIN(f, previously(; return 0; }", "u.c").ok());
}


TEST(Cfront, ForLoop) {
  const char* source =
      "int f(int n) { int sum = 0; for (int i = 1; i <= n; i = i + 1) { sum = sum + i; } "
      "return sum; }";
  EXPECT_EQ(RunSource(source, "f", {10}), 55);
  EXPECT_EQ(RunSource(source, "f", {0}), 0);
}

TEST(Cfront, ForLoopWithEmptyClauses) {
  const char* source =
      "int f() { int i = 0; for (;;) { i = i + 1; if (i == 7) { break; } } return i; }";
  EXPECT_EQ(RunSource(source, "f"), 7);
}

TEST(Cfront, BreakLeavesInnermostLoop) {
  const char* source =
      "int f() { int total = 0;\n"
      "  for (int i = 0; i < 3; i = i + 1) {\n"
      "    int j = 0;\n"
      "    while (j < 10) { j = j + 1; if (j == 2) { break; } }\n"
      "    total = total + j;\n"
      "  }\n"
      "  return total; }";
  EXPECT_EQ(RunSource(source, "f"), 6);  // inner loop always stops at j == 2
}

TEST(Cfront, ContinueSkipsToStep) {
  const char* source =
      "int f(int n) { int sum = 0;\n"
      "  for (int i = 1; i <= n; i = i + 1) {\n"
      "    if (i % 2 == 0) { continue; }\n"
      "    sum = sum + i;\n"
      "  }\n"
      "  return sum; }";
  EXPECT_EQ(RunSource(source, "f", {10}), 25);  // 1+3+5+7+9
}

TEST(Cfront, ContinueInWhileRetests) {
  const char* source =
      "int f() { int i = 0; int sum = 0;\n"
      "  while (i < 6) { i = i + 1; if (i == 3) { continue; } sum = sum + i; }\n"
      "  return sum; }";
  EXPECT_EQ(RunSource(source, "f"), 18);  // 1+2+4+5+6
}

TEST(Cfront, BreakOutsideLoopRejected) {
  Compiler compiler;
  EXPECT_FALSE(compiler.AddUnit("int f() { break; return 0; }", "u.c").ok());
  EXPECT_FALSE(compiler.AddUnit("int g() { continue; return 0; }", "u.c").ok());
}

TEST(Cfront, AssertionInsideForLoop) {
  // One bound per call; the loop performs the check on even iterations only.
  const char* source =
      "int check(int x) { return 0; }\n"
      "int f(int x) {\n"
      "  for (int i = 0; i < 4; i = i + 1) { if (i == 2) { int r = check(x); r = r; } }\n"
      "  TESLA_WITHIN(f, previously(check(x) == 0));\n"
      "  return 0;\n"
      "}";
  Compiler compiler;
  auto status = compiler.AddUnit(source, "loop.c");
  ASSERT_TRUE(status.ok()) << status.error().ToString();
  EXPECT_EQ(compiler.manifest().automata.size(), 1u);
}

}  // namespace
}  // namespace tesla::cfront
