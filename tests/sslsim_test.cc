#include <gtest/gtest.h>

#include "runtime/runtime.h"
#include "sslsim/fetch.h"

namespace tesla::sslsim {
namespace {

runtime::RuntimeOptions TestRuntimeOptions() {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  return options;
}

TEST(Crypto, SignVerifyRoundTrip) {
  const uint64_t secret = 0xdeadbeef;
  EvpKey key = EvpGenerateKey(secret);

  EvpMdCtx digest;
  uint64_t blob = 42;
  digest.Update(&blob, sizeof(blob));
  Signature signature = EvpSign(key, secret, digest.digest);

  SslInstrumentation no_instr;
  EXPECT_EQ(EVP_VerifyFinal(no_instr, &digest, &signature, sizeof(Signature), &key), 1);
}

TEST(Crypto, WrongDigestFailsWithZero) {
  const uint64_t secret = 77;
  EvpKey key = EvpGenerateKey(secret);
  EvpMdCtx digest;
  uint64_t blob = 1;
  digest.Update(&blob, sizeof(blob));
  Signature signature = EvpSign(key, secret, digest.digest);

  EvpMdCtx other;
  uint64_t tampered = 2;
  other.Update(&tampered, sizeof(tampered));
  SslInstrumentation no_instr;
  EXPECT_EQ(EVP_VerifyFinal(no_instr, &other, &signature, sizeof(Signature), &key), 0);
}

TEST(Crypto, ForgedAsn1TagFailsExceptionally) {
  const uint64_t secret = 99;
  EvpKey key = EvpGenerateKey(secret);
  EvpMdCtx digest;
  uint64_t blob = 3;
  digest.Update(&blob, sizeof(blob));
  Signature signature = EvpSign(key, secret, digest.digest);
  signature.s.tag = Asn1Tag::kBitString;  // the CVE-2008-5077 forgery

  SslInstrumentation no_instr;
  EXPECT_EQ(EVP_VerifyFinal(no_instr, &digest, &signature, sizeof(Signature), &key), -1);
}

TEST(Crypto, NullArgumentsFailExceptionally) {
  SslInstrumentation no_instr;
  EvpMdCtx digest;
  Signature signature;
  EvpKey key;
  EXPECT_EQ(EVP_VerifyFinal(no_instr, nullptr, &signature, 8, &key), -1);
  EXPECT_EQ(EVP_VerifyFinal(no_instr, &digest, nullptr, 8, &key), -1);
  EXPECT_EQ(EVP_VerifyFinal(no_instr, &digest, &signature, 0, &key), -1);
}

TEST(Ssl, HonestHandshakeSucceeds) {
  Server server = Server::Honest(123, "hello");
  Ssl ssl;
  ssl.peer = &server;
  SslInstrumentation no_instr;
  EXPECT_EQ(SSL_connect(no_instr, SslConfig{}, &ssl), 1);
  EXPECT_EQ(ssl.last_verify_result, 1);
  std::string document;
  EXPECT_GT(SSL_read(no_instr, &ssl, &document), 0);
  EXPECT_EQ(document, "hello");
}

TEST(Ssl, BuggyCheckTreatsExceptionAsSuccess) {
  // The vulnerable client "connects" to the malicious server.
  Server server = Server::Malicious(123, "pwned");
  Ssl ssl;
  ssl.peer = &server;
  SslInstrumentation no_instr;
  SslConfig buggy;  // correct_verify_check = false
  EXPECT_EQ(SSL_connect(no_instr, buggy, &ssl), 1) << "the CVE: -1 conflated with success";
  EXPECT_EQ(ssl.last_verify_result, -1);
}

TEST(Ssl, FixedCheckRejectsException) {
  Server server = Server::Malicious(123, "pwned");
  Ssl ssl;
  ssl.peer = &server;
  SslInstrumentation no_instr;
  SslConfig fixed;
  fixed.correct_verify_check = true;
  EXPECT_EQ(SSL_connect(no_instr, fixed, &ssl), 0);
}

TEST(Fetch, TeslaCatchesTheCveAcrossLibraryBoundaries) {
  // The paper's demonstration: the assertion lives in libfetch's client yet
  // observes libcrypto's EVP_VerifyFinal through libssl.
  runtime::Runtime rt(TestRuntimeOptions());
  auto manifest = FetchAssertions();
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(rt.Register(manifest.value()).ok());
  runtime::ThreadContext ctx(rt);

  SslInstrumentation instr{&rt, &ctx};
  FetchClient client(instr, SslConfig{});  // vulnerable check

  // Honest server: document fetched, assertion satisfied.
  Server honest = Server::Honest(1, "<html>ok</html>");
  FetchResult good = client.FetchDocument(honest);
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(rt.stats().violations, 0u);

  // Malicious server: the buggy client *believes* the handshake succeeded —
  // but TESLA reports that no EVP_VerifyFinal returned 1.
  Server malicious = Server::Malicious(1, "<html>evil</html>");
  FetchResult bad = client.FetchDocument(malicious);
  EXPECT_TRUE(bad.ok) << "without TESLA the client is silently compromised";
  EXPECT_EQ(bad.verify_result, -1);
  EXPECT_EQ(rt.stats().violations, 1u) << "fig. 6's assertion must fire";
}

TEST(Fetch, FixedClientNeverTripsAssertion) {
  runtime::Runtime rt(TestRuntimeOptions());
  auto manifest = FetchAssertions();
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(rt.Register(manifest.value()).ok());
  runtime::ThreadContext ctx(rt);

  SslInstrumentation instr{&rt, &ctx};
  SslConfig fixed;
  fixed.correct_verify_check = true;
  FetchClient client(instr, fixed);

  Server malicious = Server::Malicious(1, "<html>evil</html>");
  FetchResult result = client.FetchDocument(malicious);
  EXPECT_FALSE(result.ok) << "the fixed client refuses the connection";
  EXPECT_EQ(rt.stats().violations, 0u) << "no site is reached, so no violation";
}

}  // namespace
}  // namespace tesla::sslsim
