#include "parser/parser.h"

#include <gtest/gtest.h>

#include "parser/ast.h"
#include "parser/lexer.h"

namespace tesla {
namespace {

using ast::AssignOp;
using ast::BooleanOp;
using ast::Context;
using ast::ExprKind;
using ast::FunctionEventKind;
using ast::Modifier;
using ast::ValueKind;

TEST(Lexer, TokenisesOperators) {
  auto tokens = parser::Tokenize("a == b || c ^ d.e += 1 ++ -- &x");
  ASSERT_TRUE(tokens.ok()) << tokens.error().ToString();
  std::vector<parser::TokenKind> kinds;
  for (const auto& token : tokens.value()) {
    kinds.push_back(token.kind);
  }
  EXPECT_EQ(kinds[1], parser::TokenKind::kEqualEqual);
  EXPECT_EQ(kinds[3], parser::TokenKind::kPipePipe);
  EXPECT_EQ(kinds[5], parser::TokenKind::kCaret);
  EXPECT_EQ(kinds[7], parser::TokenKind::kDot);
  EXPECT_EQ(kinds[9], parser::TokenKind::kPlusEqual);
  EXPECT_EQ(kinds[11], parser::TokenKind::kPlusPlus);
  EXPECT_EQ(kinds[12], parser::TokenKind::kMinusMinus);
  EXPECT_EQ(kinds[13], parser::TokenKind::kAmpersand);
}

TEST(Lexer, HexAndNegativeIntegers) {
  auto tokens = parser::Tokenize("0x10 -5 42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].integer, 16);
  EXPECT_EQ(tokens.value()[1].integer, -5);
  EXPECT_EQ(tokens.value()[2].integer, 42);
}

TEST(Lexer, RejectsBareUnexpectedCharacter) {
  EXPECT_FALSE(parser::Tokenize("a @ b").ok());
  EXPECT_FALSE(parser::Tokenize("a + b").ok());  // '+' alone is not a token
}

TEST(Lexer, SkipsComments) {
  auto tokens = parser::Tokenize("a // trailing comment\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 3u);  // a, b, end
  EXPECT_EQ(tokens.value()[1].text, "b");
}

TEST(Parser, PaperFigure1) {
  // TESLA_WITHIN(enclosing_fn, previously(security_check(ANY(ptr), o, op) == 0))
  auto assertion = parser::ParseAssertion(
      "TESLA_WITHIN(enclosing_fn, previously(security_check(ANY(ptr), o, op) == 0))");
  ASSERT_TRUE(assertion.ok()) << assertion.error().ToString();
  EXPECT_EQ(assertion->context, Context::kPerThread);
  EXPECT_TRUE(assertion->start.is_call);
  EXPECT_EQ(assertion->start.function, "enclosing_fn");
  EXPECT_FALSE(assertion->end.is_call);
  EXPECT_EQ(assertion->end.function, "enclosing_fn");

  // previously(x) expands to TSEQUENCE(x, SITE).
  const auto& sequence = *assertion->expr;
  ASSERT_EQ(sequence.kind, ExprKind::kSequence);
  ASSERT_EQ(sequence.children.size(), 2u);
  const auto& event = *sequence.children[0];
  EXPECT_EQ(event.kind, ExprKind::kFunctionEvent);
  EXPECT_EQ(event.fn_kind, FunctionEventKind::kReturnValue);
  EXPECT_EQ(event.function, "security_check");
  ASSERT_EQ(event.args.size(), 3u);
  EXPECT_EQ(event.args[0].kind, ValueKind::kAny);
  EXPECT_EQ(event.args[1].kind, ValueKind::kVariable);
  EXPECT_EQ(event.args[1].variable, "o");
  EXPECT_EQ(event.return_pattern.kind, ValueKind::kLiteral);
  EXPECT_EQ(event.return_pattern.literal, 0);
  EXPECT_EQ(sequence.children[1]->kind, ExprKind::kAssertionSite);
}

TEST(Parser, PaperFigure4SyscallPreviously) {
  parser::ParseOptions options;
  options.syscall_bound_function = "amd64_syscall";
  auto assertion = parser::ParseAssertion(
      "TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(active_cred, so) == 0)", options);
  ASSERT_TRUE(assertion.ok()) << assertion.error().ToString();
  EXPECT_EQ(assertion->start.function, "amd64_syscall");
  ASSERT_EQ(assertion->expr->kind, ExprKind::kSequence);
  EXPECT_EQ(assertion->expr->children[1]->kind, ExprKind::kAssertionSite);
}

TEST(Parser, EventuallyPutsSiteFirst) {
  auto expr = parser::ParseExpr("eventually(foo(x) == 0)");
  ASSERT_TRUE(expr.ok());
  ASSERT_EQ((*expr)->kind, ExprKind::kSequence);
  EXPECT_EQ((*expr)->children[0]->kind, ExprKind::kAssertionSite);
  EXPECT_EQ((*expr)->children[1]->kind, ExprKind::kFunctionEvent);
}

TEST(Parser, PaperFigure7MultiPathOr) {
  parser::ParseOptions options;
  options.syscall_bound_function = "amd64_syscall";
  auto assertion = parser::ParseAssertion(
      "TESLA_SYSCALL(incallstack(ufs_readdir)"
      " || previously(called(vn_rdwr(ANY(ptr), vp, flags(IO_NOMACCHECK))))"
      " || previously(mac_vnode_check_read(ANY(ptr), ANY(ptr), vp) == 0))",
      options);
  ASSERT_TRUE(assertion.ok()) << assertion.error().ToString();
  const auto& boolean = *assertion->expr;
  ASSERT_EQ(boolean.kind, ExprKind::kBoolean);
  EXPECT_EQ(boolean.bool_op, BooleanOp::kOr);
  ASSERT_EQ(boolean.children.size(), 3u);
  EXPECT_EQ(boolean.children[0]->kind, ExprKind::kInCallStack);
  EXPECT_EQ(boolean.children[0]->function, "ufs_readdir");
  EXPECT_EQ(boolean.children[1]->kind, ExprKind::kSequence);
}

TEST(Parser, FieldAssignForms) {
  auto simple = parser::ParseExpr("s.foo = 3");
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ((*simple)->kind, ExprKind::kFieldAssign);
  EXPECT_EQ((*simple)->struct_var, "s");
  EXPECT_EQ((*simple)->field, "foo");
  EXPECT_EQ((*simple)->assign_op, AssignOp::kAssign);
  EXPECT_EQ((*simple)->assign_value.literal, 3);

  auto compound = parser::ParseExpr("s.foo += 1");
  ASSERT_TRUE(compound.ok());
  EXPECT_EQ((*compound)->assign_op, AssignOp::kPlusEqual);

  auto increment = parser::ParseExpr("s.count++");
  ASSERT_TRUE(increment.ok());
  EXPECT_EQ((*increment)->assign_op, AssignOp::kIncrement);

  auto decrement = parser::ParseExpr("s.count--");
  ASSERT_TRUE(decrement.ok());
  EXPECT_EQ((*decrement)->assign_op, AssignOp::kDecrement);
}

TEST(Parser, AtLeastWithMethodEvents) {
  auto expr = parser::ParseExpr("ATLEAST(0, push(ANY(ptr)), pop(ANY(ptr)))");
  ASSERT_TRUE(expr.ok()) << expr.error().ToString();
  EXPECT_EQ((*expr)->kind, ExprKind::kAtLeast);
  EXPECT_EQ((*expr)->at_least, 0);
  EXPECT_EQ((*expr)->children.size(), 2u);
}

TEST(Parser, AtLeastRejectsNegativeAndEmpty) {
  EXPECT_FALSE(parser::ParseExpr("ATLEAST(-1, f())").ok());
  EXPECT_FALSE(parser::ParseExpr("ATLEAST(2)").ok());
}

TEST(Parser, Modifiers) {
  auto optional = parser::ParseExpr("optional(f())");
  ASSERT_TRUE(optional.ok());
  EXPECT_EQ((*optional)->modifier, Modifier::kOptional);

  auto caller = parser::ParseExpr("caller(call(f))");
  ASSERT_TRUE(caller.ok());
  EXPECT_EQ((*caller)->modifier, Modifier::kCaller);

  auto strict = parser::ParseExpr("strict(TSEQUENCE(a(), b()))");
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ((*strict)->modifier, Modifier::kStrict);
}

TEST(Parser, BareCallMatchesAnyArguments) {
  auto expr = parser::ParseExpr("call(foo)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, ExprKind::kFunctionEvent);
  EXPECT_FALSE((*expr)->args_specified);
}

TEST(Parser, ReturnFromWithArgs) {
  auto expr = parser::ParseExpr("returnfrom(foo(x, 3))");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->fn_kind, FunctionEventKind::kReturn);
  EXPECT_TRUE((*expr)->args_specified);
  EXPECT_EQ((*expr)->args.size(), 2u);
}

TEST(Parser, MixedBooleanOperatorsRequireParens) {
  EXPECT_FALSE(parser::ParseExpr("a() || b() ^ c()").ok());
  EXPECT_TRUE(parser::ParseExpr("a() || (b() ^ c())").ok());
}

TEST(Parser, FlagsAndBitmaskValues) {
  auto expr = parser::ParseExpr("f(flags(A | B), bitmask(C))");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->args[0].kind, ValueKind::kFlags);
  EXPECT_EQ((*expr)->args[0].flag_names.size(), 2u);
  EXPECT_EQ((*expr)->args[1].kind, ValueKind::kBitmask);
}

TEST(Parser, IndirectValue) {
  auto expr = parser::ParseExpr("f(&err) == 1");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->args[0].kind, ValueKind::kIndirect);
  EXPECT_EQ((*expr)->args[0].variable, "err");
}

TEST(Parser, GlobalAndPerThreadForms) {
  auto global = parser::ParseAssertion("TESLA_GLOBAL(call(f), returnfrom(f), g())");
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global->context, Context::kGlobal);

  auto perthread = parser::ParseAssertion("TESLA_PERTHREAD(call(f), returnfrom(f), g())");
  ASSERT_TRUE(perthread.ok());
  EXPECT_EQ(perthread->context, Context::kPerThread);

  auto explicit_form =
      parser::ParseAssertion("TESLA_ASSERT(global, call(f), returnfrom(f), g())");
  ASSERT_TRUE(explicit_form.ok());
  EXPECT_EQ(explicit_form->context, Context::kGlobal);
}

TEST(Parser, ErrorsCarryLocation) {
  auto bad = parser::ParseAssertion("TESLA_WITHIN(foo, previously(security_check(");
  ASSERT_FALSE(bad.ok());
  EXPECT_GT(bad.error().line, 0);
}

TEST(Parser, RejectsUnknownMacroAndTrailingInput) {
  EXPECT_FALSE(parser::ParseAssertion("TESLA_BOGUS(call(f), returnfrom(f), g())").ok());
  EXPECT_FALSE(parser::ParseAssertion("TESLA_WITHIN(f, g()) extra").ok());
}

TEST(Parser, FormatRoundTrip) {
  const char* sources[] = {
      "TESLA_WITHIN(foo, previously(check(ANY(ptr), o) == 0))",
      "TESLA_GLOBAL(call(f), returnfrom(f), TSEQUENCE(a(), b(), c()))",
      "TESLA_PERTHREAD(call(f), returnfrom(f), (a() ^ b()))",
      "TESLA_WITHIN(f, optional(g(1, 2)))",
      "TESLA_WITHIN(f, s.state = 3)",
  };
  for (const char* source : sources) {
    auto first = parser::ParseAssertion(source);
    ASSERT_TRUE(first.ok()) << source << ": " << first.error().ToString();
    std::string formatted = parser::FormatAssertion(first.value());
    auto second = parser::ParseAssertion(formatted);
    ASSERT_TRUE(second.ok()) << formatted << ": " << second.error().ToString();
    EXPECT_EQ(formatted, parser::FormatAssertion(second.value()));
  }
}

}  // namespace
}  // namespace tesla
