// Self-describing captures: the manifest serialise → parse → Register()
// round trip must be a fixpoint that compiles an identical dispatch plan
// (checked behaviourally over the kernel workload), a `file:` origin must
// let a capture replay in a process with no built-in knowledge of its
// assertion set, and the embedded v4 manifest must beat an unresolvable
// origin string.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "automata/manifest.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "metrics/snapshot.h"
#include "runtime/runtime.h"
#include "support/log.h"
#include "trace/format.h"
#include "trace/origins.h"
#include "trace/replay.h"

namespace tesla {
namespace {

using runtime::Runtime;
using runtime::RuntimeOptions;
using trace::TraceFile;

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp") + "/" + name + "." +
         std::to_string(::getpid());
}

RuntimeOptions TestOptions(trace::TraceMode mode = trace::TraceMode::kOff) {
  RuntimeOptions options;
  options.fail_stop = false;
  options.trace_mode = mode;
  options.metrics_mode = metrics::MetricsMode::kCounters;
  return options;
}

// The buggy kernel study: deterministic, touches dozens of automata and all
// three violation paths — a strong behavioural fingerprint of the plan.
void DriveKernel(Runtime& rt) {
  kernelsim::KernelConfig config;
  config.tesla = &rt;
  config.bugs.kqueue_missing_mac_check = true;
  config.bugs.poll_uses_file_credential = true;
  config.bugs.setuid_skips_sugid_flag = true;
  kernelsim::Kernel kernel(config);
  kernelsim::Proc* proc = kernel.NewProcess(0);
  kernelsim::KThread td = kernel.NewThread(proc);
  kernelsim::OpenCloseLoop(kernel, td, 30);
  int64_t sock = kernel.SysSocket(td);
  kernel.SysConnect(td, sock);
  kernel.SysPoll(td, sock, 1);
  kernel.SysKevent(td, sock, 1);
  kernel.SysSetuid(td, 0);
  kernel.SysPoll(td, sock, 1);
  kernel.SysSetuid(td, 5);
}

TEST(ManifestRoundTrip, SerialiseParseRegisterIsAFixpoint) {
  SetLogLevel(LogLevel::kSilent);
  Runtime first(TestOptions());
  auto manifest = kernelsim::KernelAssertions(kernelsim::kSetAll);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(first.Register(manifest.value()).ok());
  const std::string text1 = first.ManifestText();
  ASSERT_FALSE(text1.empty());

  auto reparsed = automata::Manifest::Deserialize(text1);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().ToString();
  ASSERT_EQ(reparsed.value().automata.size(), manifest.value().automata.size());
  Runtime second(TestOptions());
  ASSERT_TRUE(second.Register(reparsed.value()).ok());

  // Bit-identical re-serialisation: the registered text is a fixpoint of
  // serialise → parse → Register, so a capture's embedded manifest never
  // drifts however many hops it takes.
  EXPECT_EQ(second.ManifestText(), text1);

  // And the two plans behave identically: same stats, same per-class
  // counters, same coverage over the full kernel study.
  DriveKernel(first);
  DriveKernel(second);
  ASSERT_GE(first.stats().violations, 3u);
  for (const trace::StatsField& field : trace::kStatsFields) {
    EXPECT_EQ(second.stats().*field.field, first.stats().*field.field) << field.name;
  }
  const metrics::Snapshot a = first.CollectMetrics();
  const metrics::Snapshot b = second.CollectMetrics();
  ASSERT_EQ(b.classes.size(), a.classes.size());
  for (size_t c = 0; c < a.classes.size(); c++) {
    EXPECT_EQ(b.classes[c].name, a.classes[c].name);
    for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
      EXPECT_EQ(b.classes[c].counters[k], a.classes[c].counters[k]) << a.classes[c].name;
    }
    ASSERT_EQ(b.classes[c].transitions.size(), a.classes[c].transitions.size());
    for (size_t t = 0; t < a.classes[c].transitions.size(); t++) {
      EXPECT_EQ(b.classes[c].transitions[t].fired, a.classes[c].transitions[t].fired)
          << a.classes[c].name << " transition " << t;
    }
  }
}

// Strips the embedded manifest from a capture, rewriting it with `origin` —
// the shape of a pre-v4 capture, or one written by a minimal producer.
void RewriteWithoutManifest(const TraceFile& file, const std::string& origin,
                            const std::string& path) {
  trace::TraceWriter writer;
  // Same-process rewrite: the global interner is a superset of the capture's
  // symbol table, and the ids agree, so records carry over untouched.
  ASSERT_TRUE(writer.Open(path, origin, file.options, GlobalInterner()).ok());
  for (const trace::TraceRecord& record : file.records) {
    writer.Append(record);
  }
  ASSERT_TRUE(writer.Finish(file.summary).ok());
}

TEST(ManifestRoundTrip, FileOriginReplaysWithoutBuiltInManifest) {
  SetLogLevel(LogLevel::kSilent);
  const std::string manifest_path = TempPath("tesla_roundtrip_manifest.tesla");
  const std::string capture_path = TempPath("tesla_roundtrip_v4.cap");
  const std::string stripped_path = TempPath("tesla_roundtrip_stripped.cap");

  Runtime rt(TestOptions(trace::TraceMode::kFullCapture));
  auto manifest = kernelsim::KernelAssertions(kernelsim::kSetAll);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(rt.Register(manifest.value()).ok());
  DriveKernel(rt);
  {
    std::ofstream out(manifest_path);
    out << rt.ManifestText();  // what `teslac run --emit-manifest` writes
  }
  ASSERT_TRUE(trace::WriteCapture(capture_path, "file:" + manifest_path, rt).ok());

  auto read = TraceFile::Read(capture_path);
  ASSERT_TRUE(read.ok());
  ASSERT_FALSE(read.value().manifest_text.empty());  // v4 always embeds

  // Remove the embedded copy: replay must now resolve the file: origin —
  // the only route a fresh process without this binary's manifests has.
  RewriteWithoutManifest(read.value(), "file:" + manifest_path, stripped_path);
  auto replayed = trace::ReplayFile(stripped_path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().ToString();
  EXPECT_TRUE(replayed.value().matched) << replayed.value().divergence;
  EXPECT_EQ(replayed.value().stats.violations, rt.stats().violations);

  std::remove(manifest_path.c_str());
  std::remove(capture_path.c_str());
  std::remove(stripped_path.c_str());
}

TEST(ManifestRoundTrip, EmbeddedManifestBeatsUnresolvableOrigin) {
  SetLogLevel(LogLevel::kSilent);
  const std::string path = TempPath("tesla_roundtrip_garbage_origin.cap");
  Runtime rt(TestOptions(trace::TraceMode::kFullCapture));
  auto manifest = kernelsim::KernelAssertions(kernelsim::kSetAll);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(rt.Register(manifest.value()).ok());
  DriveKernel(rt);
  // The origin names nothing this (or any) binary knows; the v4 embedded
  // manifest alone must carry the replay.
  ASSERT_TRUE(trace::WriteCapture(path, "decommissioned-host:job42", rt).ok());
  auto replayed = trace::ReplayFile(path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().ToString();
  EXPECT_TRUE(replayed.value().matched) << replayed.value().divergence;
  std::remove(path.c_str());
}

TEST(ManifestRoundTrip, UnknownOriginErrorIsCodedAndListsAlternatives) {
  SetLogLevel(LogLevel::kSilent);
  const std::string capture_path = TempPath("tesla_roundtrip_unknown.cap");
  const std::string stripped_path = TempPath("tesla_roundtrip_unknown_stripped.cap");
  Runtime rt(TestOptions(trace::TraceMode::kFullCapture));
  auto manifest = kernelsim::KernelAssertions(kernelsim::kSetAll);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(rt.Register(manifest.value()).ok());
  DriveKernel(rt);
  ASSERT_TRUE(trace::WriteCapture(capture_path, "kernelsim:all", rt).ok());
  auto read = TraceFile::Read(capture_path);
  ASSERT_TRUE(read.ok());
  RewriteWithoutManifest(read.value(), "decommissioned-host:job42", stripped_path);

  auto replayed = trace::ReplayFile(stripped_path);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.error().code, trace::kErrUnknownOrigin);
  // The message must teach the fix: the built-in origins and the file: form.
  const std::string message = replayed.error().ToString();
  EXPECT_NE(message.find("kernelsim:all"), std::string::npos);
  EXPECT_NE(message.find("file:"), std::string::npos);

  // A file: origin whose path is unreadable keeps the I/O error class.
  RewriteWithoutManifest(read.value(), "file:/nonexistent/manifest.tesla", stripped_path);
  auto unreadable = trace::ReplayFile(stripped_path);
  ASSERT_FALSE(unreadable.ok());
  EXPECT_EQ(unreadable.error().code, trace::kErrUnreadable);

  std::remove(capture_path.c_str());
  std::remove(stripped_path.c_str());
}

}  // namespace
}  // namespace tesla
