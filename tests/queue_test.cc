// tesla::queue — differential, lifecycle and concurrency coverage.
//
// The central claim of the async front-end is that it changes *where*
// dispatch happens, never *what* it computes: the differential test drives
// the identical per-class event streams inline and through the queue and
// requires identical per-class metrics counters and the identical violation
// multiset. The lifecycle tests pin the queue's edges — enqueue-after-Stop
// is rejected, drop-policy accounting is exact under a saturated ring, and
// Stop() flushes every accepted event. The multi-producer test runs under
// -fsanitize=thread in CI as the data-race check for the ring protocol and
// the ingest hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "metrics/metrics.h"
#include "queue/queue.h"
#include "runtime/runtime.h"
#include "support/log.h"
#include "trace/record.h"

namespace tesla {
namespace {

constexpr int kClasses = 6;
constexpr int kIterations = 500;

struct ClassSymbols {
  Symbol enter;
  Symbol check;
  Symbol exit;
  uint32_t id;
};

// Disjoint per-class alphabets: each class's outcome depends only on its own
// stream, so per-class counters are deterministic no matter how producer
// streams interleave at the consumer.
automata::Manifest MakeManifest() {
  automata::Manifest manifest;
  for (int g = 0; g < kClasses; g++) {
    const std::string n = std::to_string(g);
    const std::string source = "TESLA_GLOBAL(call(qenter" + n + "), returnfrom(qexit" + n +
                               "), previously(qcheck" + n + "(x) == 0))";
    auto automaton = automata::CompileAssertion(source, {}, "queue-" + n);
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    manifest.Add(std::move(automaton.value()));
  }
  return manifest;
}

std::vector<ClassSymbols> ResolveSymbols(runtime::Runtime& rt) {
  std::vector<ClassSymbols> symbols;
  for (int g = 0; g < kClasses; g++) {
    const std::string n = std::to_string(g);
    ClassSymbols s;
    s.enter = InternString("qenter" + n);
    s.check = InternString("qcheck" + n);
    s.exit = InternString("qexit" + n);
    s.id = static_cast<uint32_t>(rt.FindAutomaton("queue-" + n));
    EXPECT_GE(rt.FindAutomaton("queue-" + n), 0);
    symbols.push_back(s);
  }
  return symbols;
}

// Every 5th bound skips the check, so the site deterministically violates;
// all others accept.
void DriveClass(runtime::Runtime& rt, runtime::ThreadContext& ctx, const ClassSymbols& s) {
  for (int i = 0; i < kIterations; i++) {
    rt.OnFunctionCall(ctx, s.enter, {});
    if (i % 5 != 4) {
      int64_t args[] = {i % 7};
      rt.OnFunctionReturn(ctx, s.check, args, 0);
    }
    runtime::Binding site[] = {{0, i % 7}};
    rt.OnAssertionSite(ctx, s.id, site);
    rt.OnFunctionReturn(ctx, s.exit, {}, 0);
  }
}

struct WorkloadResult {
  runtime::RuntimeStats stats;
  metrics::Snapshot metrics;
  std::vector<std::pair<runtime::ViolationKind, std::string>> violations;  // sorted
};

WorkloadResult RunWorkload(bool async) {
  SetLogLevel(LogLevel::kSilent);
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = 4;
  options.metrics_mode = metrics::MetricsMode::kCounters;
  options.trace_mode = trace::TraceMode::kFlightRecorder;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  EXPECT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);

  // Contexts are created up front and outlive Stop(), as the queue requires.
  std::vector<std::unique_ptr<runtime::ThreadContext>> contexts;
  for (int g = 0; g < kClasses; g++) {
    contexts.push_back(std::make_unique<runtime::ThreadContext>(rt));
  }

  std::unique_ptr<queue::EventQueue> q;
  if (async) {
    queue::QueueOptions queue_options;
    queue_options.ring_capacity = 512;  // small enough that producers block
    q = std::make_unique<queue::EventQueue>(rt, queue_options);
    q->Start();
  }

  std::vector<std::thread> workers;
  for (int g = 0; g < kClasses; g++) {
    workers.emplace_back([&rt, &symbols, &contexts, g] {
      DriveClass(rt, *contexts[g], symbols[g]);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (q != nullptr) {
    q->Stop();
    const queue::ProducerStats totals = q->totals();
    EXPECT_EQ(totals.dropped, 0u);   // blocking policy: lossless
    EXPECT_EQ(totals.rejected, 0u);  // producers quiesced before Stop
    EXPECT_EQ(rt.stats().queue_events, totals.enqueued);
  }

  WorkloadResult result;
  result.stats = rt.stats();
  result.metrics = rt.CollectMetrics();
  result.violations = rt.violation_log();
  std::sort(result.violations.begin(), result.violations.end());
  return result;
}

TEST(QueueDifferential, AsyncMatchesSyncCountersAndViolations) {
  WorkloadResult sync = RunWorkload(/*async=*/false);
  WorkloadResult async = RunWorkload(/*async=*/true);

  // Sanity: the workload produced real activity, and the async run really
  // went through the queue.
  EXPECT_GT(sync.stats.violations, 0u);
  EXPECT_GT(sync.stats.accepts, 0u);
  EXPECT_EQ(async.stats.queue_events, sync.stats.events);
  EXPECT_GT(async.stats.queue_batches, 0u);
  EXPECT_EQ(sync.stats.queue_events, 0u);

  // The replay-compared stats agree exactly.
  EXPECT_EQ(async.stats.events, sync.stats.events);
  EXPECT_EQ(async.stats.accepts, sync.stats.accepts);
  EXPECT_EQ(async.stats.violations, sync.stats.violations);
  EXPECT_EQ(async.stats.instances_created, sync.stats.instances_created);
  EXPECT_EQ(async.stats.bound_entries, sync.stats.bound_entries);
  EXPECT_EQ(async.stats.bound_exits, sync.stats.bound_exits);
  EXPECT_EQ(async.stats.transitions, sync.stats.transitions);

  // Per-class metrics counters are identical, class by class.
  ASSERT_EQ(async.metrics.classes.size(), sync.metrics.classes.size());
  for (size_t c = 0; c < sync.metrics.classes.size(); c++) {
    EXPECT_EQ(async.metrics.classes[c].name, sync.metrics.classes[c].name);
    for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
      EXPECT_EQ(async.metrics.classes[c].counters[k], sync.metrics.classes[c].counters[k])
          << sync.metrics.classes[c].name << "." << metrics::kClassCounterNames[k];
    }
  }

  // The violation *multiset* is identical (cross-producer order is
  // scheduler-chosen in both modes, so only the multiset is defined).
  EXPECT_EQ(async.violations, sync.violations);
}

// Runs under TSan in CI: many producers hammer the hook, the rings and the
// blocking backpressure path at once while the consumer dispatches.
TEST(QueueConcurrency, ManyBlockedProducersAreClean) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  options.global_shards = 4;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  ASSERT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);

  std::vector<std::unique_ptr<runtime::ThreadContext>> contexts;
  for (int g = 0; g < kClasses; g++) {
    contexts.push_back(std::make_unique<runtime::ThreadContext>(rt));
  }

  queue::QueueOptions queue_options;
  queue_options.ring_capacity = 64;  // force the blocking path constantly
  queue_options.batch_events = 32;
  queue::EventQueue q(rt, queue_options);
  q.Start();

  std::vector<std::thread> workers;
  for (int g = 0; g < kClasses; g++) {
    workers.emplace_back([&rt, &symbols, &contexts, g] {
      DriveClass(rt, *contexts[g], symbols[g]);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  q.Stop();

  const queue::ProducerStats totals = q.totals();
  EXPECT_EQ(q.producer_count(), static_cast<size_t>(kClasses));
  EXPECT_EQ(totals.dropped, 0u);
  EXPECT_EQ(rt.stats().events, totals.enqueued);
  EXPECT_EQ(rt.stats().queue_events, totals.enqueued);
  EXPECT_GT(rt.stats().violations, 0u);
}

TEST(QueueLifecycle, EnqueueAfterStopIsRejected) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  ASSERT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);
  runtime::ThreadContext ctx(rt);

  queue::EventQueue q(rt);
  q.Start();
  ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Call(symbols[0].enter, {})));
  q.Stop();

  // Direct enqueue after Stop: rejected and counted.
  EXPECT_FALSE(q.Enqueue(ctx, runtime::Event::Call(symbols[0].enter, {})));
  const queue::ProducerStats totals = q.totals();
  EXPECT_EQ(totals.enqueued, 1u);
  EXPECT_EQ(totals.rejected, 1u);

  // The hook was uninstalled, so the runtime's entry points fall back to
  // inline dispatch instead of silently losing events.
  const uint64_t before = rt.stats().events;
  rt.OnFunctionCall(ctx, symbols[0].enter, {});
  EXPECT_EQ(rt.stats().events, before + 1);
  EXPECT_EQ(rt.stats().queue_events, 1u);
}

// Blocks the consumer inside a violation handler so the test can saturate a
// tiny ring deterministically.
class GateHandler : public runtime::EventHandler {
 public:
  void OnViolation(const runtime::ClassInfo&, const runtime::Violation&) override {
    blocked_.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }
  void WaitUntilBlocked() {
    while (!blocked_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<bool> blocked_{false};
};

TEST(QueueLifecycle, DropAccountingIsExactUnderSaturation) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  ASSERT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);
  GateHandler gate;
  rt.AddHandler(&gate);
  runtime::ThreadContext ctx(rt);

  queue::QueueOptions queue_options;
  queue_options.on_full = queue::QueueOptions::OnFull::kDrop;
  queue_options.ring_capacity = 8;
  queue_options.batch_events = 4;
  queue_options.install_hook = false;
  queue::EventQueue q(rt, queue_options);
  q.Start();

  // A bound whose site violates (no check event): the consumer parks in the
  // gate while dispatching it, and stops draining.
  uint64_t attempted = 0;
  ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Call(symbols[0].enter, {})));
  runtime::Binding site[] = {{0, 3}};
  ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Site(symbols[0].id, site)));
  attempted += 2;
  gate.WaitUntilBlocked();

  // The consumer is parked, so the ring must saturate. Records are
  // variable-length (ring.h): an 8-event ring is 128 words and a bare call
  // serialises to 2, so at most 64 of the burst can be accepted — every
  // further enqueue must take the drop path.
  constexpr uint64_t kRingWords = 128;  // 8 events × 13 worst-case words, rounded up
  constexpr uint64_t kBareCallWords = 2;
  constexpr uint64_t kBurst = 200;
  for (uint64_t i = 0; i < kBurst; i++) {
    EXPECT_TRUE(q.Enqueue(ctx, runtime::Event::Call(symbols[0].enter, {})));
  }
  attempted += kBurst;

  const queue::ProducerStats saturated = q.totals();
  EXPECT_GT(saturated.dropped, 0u);
  EXPECT_GE(saturated.dropped, kBurst - kRingWords / kBareCallWords);

  gate.Open();
  q.Stop();

  // Exactness: every attempt is accounted as exactly one of enqueued or
  // dropped, the runtime's counters agree with the queue's, and every
  // accepted event was dispatched by the flush.
  const queue::ProducerStats totals = q.totals();
  EXPECT_EQ(totals.enqueued + totals.dropped, attempted);
  EXPECT_EQ(totals.rejected, 0u);
  EXPECT_EQ(rt.stats().queue_drops, totals.dropped);
  EXPECT_EQ(rt.stats().queue_events, totals.enqueued);
  EXPECT_EQ(rt.stats().events, totals.enqueued);
}

TEST(QueueLifecycle, StopFlushesEveryAcceptedEvent) {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  runtime::Runtime rt(options);
  automata::Manifest manifest = MakeManifest();
  ASSERT_TRUE(rt.Register(manifest).ok());
  std::vector<ClassSymbols> symbols = ResolveSymbols(rt);
  runtime::ThreadContext ctx(rt);

  queue::QueueOptions queue_options;
  queue_options.ring_capacity = 4096;
  queue_options.install_hook = false;
  queue::EventQueue q(rt, queue_options);
  q.Start();

  // Enqueue a burst and Stop() immediately: the flush must deliver all of
  // it, in order, before Stop returns.
  constexpr int kBounds = 500;
  for (int i = 0; i < kBounds; i++) {
    ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Call(symbols[0].enter, {})));
    int64_t args[] = {1};
    ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Return(symbols[0].check, args, 0)));
    runtime::Binding site[] = {{0, 1}};
    ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Site(symbols[0].id, site)));
    ASSERT_TRUE(q.Enqueue(ctx, runtime::Event::Return(symbols[0].exit, {}, 0)));
  }
  q.Stop();

  EXPECT_EQ(rt.stats().events, static_cast<uint64_t>(kBounds) * 4);
  EXPECT_EQ(rt.stats().queue_events, static_cast<uint64_t>(kBounds) * 4);
  // ≥: both the wildcard instance and the bound clone can accept per bound.
  EXPECT_GE(rt.stats().accepts, static_cast<uint64_t>(kBounds));
  EXPECT_EQ(rt.stats().violations, 0u);
  EXPECT_EQ(q.totals().dropped, 0u);
}

}  // namespace
}  // namespace tesla
