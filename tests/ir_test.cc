#include <gtest/gtest.h>

#include "ir/interp.h"
#include "ir/ir.h"

namespace tesla::ir {
namespace {

// Builds: fn add(a, b) { return a + b; }
Module AddModule() {
  Module module;
  Function add;
  add.name = InternString("add");
  add.param_count = 2;
  add.reg_count = 3;
  Block block;
  block.instrs.push_back(Instr{.op = Opcode::kBin, .bin = BinOp::kAdd, .dst = 2, .a = 0, .b = 1});
  Instr ret;
  ret.op = Opcode::kRet;
  ret.a = 2;
  block.instrs.push_back(ret);
  add.blocks.push_back(std::move(block));
  module.AddFunction(std::move(add));
  return module;
}

TEST(Interp, Arithmetic) {
  Module module = AddModule();
  ASSERT_TRUE(Verify(module).ok());
  Interpreter interp(module);
  auto result = interp.Call("add", {20, 22});
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(*result, 42);
}

TEST(Interp, AllBinaryOperators) {
  struct Case {
    BinOp op;
    int64_t a, b, expected;
  };
  const Case cases[] = {
      {BinOp::kAdd, 7, 5, 12},  {BinOp::kSub, 7, 5, 2},   {BinOp::kMul, 7, 5, 35},
      {BinOp::kDiv, 7, 5, 1},   {BinOp::kMod, 7, 5, 2},   {BinOp::kAnd, 6, 3, 2},
      {BinOp::kOr, 6, 3, 7},    {BinOp::kXor, 6, 3, 5},   {BinOp::kShl, 1, 4, 16},
      {BinOp::kShr, 16, 4, 1},  {BinOp::kEq, 4, 4, 1},    {BinOp::kNe, 4, 4, 0},
      {BinOp::kLt, 3, 4, 1},    {BinOp::kLe, 4, 4, 1},    {BinOp::kGt, 3, 4, 0},
      {BinOp::kGe, 4, 4, 1},
  };
  for (const Case& c : cases) {
    Module module;
    Function fn;
    fn.name = InternString("f");
    fn.param_count = 2;
    fn.reg_count = 3;
    Block block;
    block.instrs.push_back(Instr{.op = Opcode::kBin, .bin = c.op, .dst = 2, .a = 0, .b = 1});
    Instr ret;
    ret.op = Opcode::kRet;
    ret.a = 2;
    block.instrs.push_back(ret);
    fn.blocks.push_back(std::move(block));
    module.AddFunction(std::move(fn));
    Interpreter interp(module);
    auto result = interp.Call("f", {c.a, c.b});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, c.expected) << "op " << static_cast<int>(c.op);
  }
}

TEST(Interp, DivisionByZeroTraps) {
  Module module;
  Function fn;
  fn.name = InternString("f");
  fn.param_count = 2;
  fn.reg_count = 3;
  Block block;
  block.instrs.push_back(Instr{.op = Opcode::kBin, .bin = BinOp::kDiv, .dst = 2, .a = 0, .b = 1});
  Instr ret;
  ret.op = Opcode::kRet;
  ret.a = 2;
  block.instrs.push_back(ret);
  fn.blocks.push_back(std::move(block));
  module.AddFunction(std::move(fn));
  Interpreter interp(module);
  EXPECT_FALSE(interp.Call("f", {1, 0}).ok());
}

TEST(Interp, HostFunctionBinding) {
  Module module;
  Function fn;
  fn.name = InternString("caller");
  fn.param_count = 1;
  fn.reg_count = 2;
  Block block;
  Instr call;
  call.op = Opcode::kCall;
  call.fn = InternString("host_double");
  call.dst = 1;
  call.args = {0};
  block.instrs.push_back(std::move(call));
  Instr ret;
  ret.op = Opcode::kRet;
  ret.a = 1;
  block.instrs.push_back(ret);
  fn.blocks.push_back(std::move(block));
  module.AddFunction(std::move(fn));

  Interpreter interp(module);
  interp.BindHost("host_double",
                  [](std::span<const int64_t> args) { return args.empty() ? 0 : args[0] * 2; });
  auto result = interp.Call("caller", {21});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(Interp, UndefinedFunctionErrors) {
  Module module = AddModule();
  Interpreter interp(module);
  EXPECT_FALSE(interp.Call("missing", {}).ok());
}

TEST(Interp, StepLimitStopsRunaways) {
  // fn spin() { loop forever }
  Module module;
  Function fn;
  fn.name = InternString("spin");
  fn.reg_count = 1;
  Block block;
  block.instrs.push_back(Instr{.op = Opcode::kBr, .then_block = 0});
  fn.blocks.push_back(std::move(block));
  module.AddFunction(std::move(fn));
  Interpreter interp(module);
  interp.SetStepLimit(1000);
  EXPECT_FALSE(interp.Call("spin", {}).ok());
}

TEST(Interp, StructAllocLoadStore) {
  Module module;
  StructType point;
  point.name = "point";
  point.fields = {{"x", InternString("x")}, {"y", InternString("y")}};
  uint32_t type_id = module.AddStruct(std::move(point));

  // fn f() { p = alloc point; p.y = 9; return p.y; }
  Function fn;
  fn.name = InternString("f");
  fn.reg_count = 3;
  Block block;
  block.instrs.push_back(Instr{.op = Opcode::kAlloc, .dst = 0, .type_id = type_id});
  block.instrs.push_back(Instr{.op = Opcode::kConst, .dst = 1, .imm = 9});
  block.instrs.push_back(
      Instr{.op = Opcode::kStoreField, .a = 0, .b = 1, .type_id = type_id, .field_index = 1});
  block.instrs.push_back(
      Instr{.op = Opcode::kLoadField, .dst = 2, .a = 0, .type_id = type_id, .field_index = 1});
  Instr ret;
  ret.op = Opcode::kRet;
  ret.a = 2;
  block.instrs.push_back(ret);
  fn.blocks.push_back(std::move(block));
  module.AddFunction(std::move(fn));

  ASSERT_TRUE(Verify(module).ok());
  Interpreter interp(module);
  auto result = interp.Call("f", {});
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(*result, 9);
}

TEST(Interp, IndirectCallThroughFnAddr) {
  Module module = AddModule();
  Function fn;
  fn.name = InternString("dispatch");
  fn.param_count = 2;
  fn.reg_count = 4;
  Block block;
  block.instrs.push_back(Instr{.op = Opcode::kFnAddr, .dst = 2, .fn = InternString("add")});
  Instr call;
  call.op = Opcode::kCallIndirect;
  call.dst = 3;
  call.a = 2;
  call.args = {0, 1};
  block.instrs.push_back(std::move(call));
  Instr ret;
  ret.op = Opcode::kRet;
  ret.a = 3;
  block.instrs.push_back(ret);
  fn.blocks.push_back(std::move(block));
  module.AddFunction(std::move(fn));

  Interpreter interp(module);
  auto result = interp.Call("dispatch", {40, 2});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(Interp, HookDispatch) {
  struct Recorder : HookDispatcher {
    std::vector<std::pair<uint32_t, std::vector<int64_t>>> hooks;
    void OnHook(uint32_t hook_id, std::span<const int64_t> values) override {
      hooks.emplace_back(hook_id, std::vector<int64_t>(values.begin(), values.end()));
    }
  };

  Module module;
  Function fn;
  fn.name = InternString("f");
  fn.param_count = 1;
  fn.reg_count = 2;
  Block block;
  Instr hook;
  hook.op = Opcode::kHook;
  hook.hook_id = 7;
  hook.args = {0};
  block.instrs.push_back(std::move(hook));
  block.instrs.push_back(Instr{.op = Opcode::kConst, .dst = 1, .imm = 0});
  Instr ret;
  ret.op = Opcode::kRet;
  ret.a = 1;
  block.instrs.push_back(ret);
  fn.blocks.push_back(std::move(block));
  module.AddFunction(std::move(fn));

  Recorder recorder;
  Interpreter interp(module);
  interp.SetDispatcher(&recorder);
  ASSERT_TRUE(interp.Call("f", {99}).ok());
  ASSERT_EQ(recorder.hooks.size(), 1u);
  EXPECT_EQ(recorder.hooks[0].first, 7u);
  EXPECT_EQ(recorder.hooks[0].second, std::vector<int64_t>{99});
}

TEST(Verifier, CatchesMalformedFunctions) {
  // Unterminated block.
  {
    Module module;
    Function fn;
    fn.name = InternString("f");
    fn.reg_count = 1;
    Block block;
    block.instrs.push_back(Instr{.op = Opcode::kConst, .dst = 0, .imm = 0});
    fn.blocks.push_back(std::move(block));
    module.AddFunction(std::move(fn));
    EXPECT_FALSE(Verify(module).ok());
  }
  // Register out of range.
  {
    Module module;
    Function fn;
    fn.name = InternString("f");
    fn.reg_count = 1;
    Block block;
    block.instrs.push_back(Instr{.op = Opcode::kConst, .dst = 5, .imm = 0});
    Instr ret;
    ret.op = Opcode::kRet;
    block.instrs.push_back(ret);
    fn.blocks.push_back(std::move(block));
    module.AddFunction(std::move(fn));
    EXPECT_FALSE(Verify(module).ok());
  }
  // Branch target out of range.
  {
    Module module;
    Function fn;
    fn.name = InternString("f");
    fn.reg_count = 1;
    Block block;
    block.instrs.push_back(Instr{.op = Opcode::kBr, .then_block = 9});
    fn.blocks.push_back(std::move(block));
    module.AddFunction(std::move(fn));
    EXPECT_FALSE(Verify(module).ok());
  }
}

}  // namespace
}  // namespace tesla::ir
