#include <gtest/gtest.h>

#include "objsim/appkit.h"
#include "objsim/objc.h"
#include "objsim/trace.h"
#include "runtime/runtime.h"

namespace tesla::objsim {
namespace {

runtime::RuntimeOptions TestRuntimeOptions() {
  runtime::RuntimeOptions options;
  options.fail_stop = false;
  return options;
}

TEST(ObjcRuntime, MethodDispatchAndInheritance) {
  ObjcRuntime rt;
  ObjcClass* base = rt.DefineClass("Base");
  ObjcClass* derived = rt.DefineClass("Derived", base);
  rt.AddMethod(base, "ping", [](ObjcRuntime&, ObjcObject*, std::span<const int64_t>) {
    return int64_t{1};
  });
  rt.AddMethod(derived, "pong", [](ObjcRuntime&, ObjcObject*, std::span<const int64_t>) {
    return int64_t{2};
  });

  ObjcObject* object = rt.CreateObject<ObjcObject>(derived);
  EXPECT_EQ(rt.MsgSend(object, "ping"), 1);   // inherited
  EXPECT_EQ(rt.MsgSend(object, "pong"), 2);   // own
  EXPECT_EQ(rt.MsgSend(object, "missing"), 0);  // unrecognised selector
  EXPECT_EQ(rt.messages_sent(), 3u);
}

TEST(ObjcRuntime, MethodOverrideShadowsSuper) {
  ObjcRuntime rt;
  ObjcClass* base = rt.DefineClass("Base");
  ObjcClass* derived = rt.DefineClass("Derived", base);
  rt.AddMethod(base, "answer", [](ObjcRuntime&, ObjcObject*, std::span<const int64_t>) {
    return int64_t{1};
  });
  rt.AddMethod(derived, "answer", [](ObjcRuntime&, ObjcObject*, std::span<const int64_t>) {
    return int64_t{2};
  });
  ObjcObject* object = rt.CreateObject<ObjcObject>(derived);
  EXPECT_EQ(rt.MsgSend(object, "answer"), 2);
}

TEST(ObjcRuntime, InterpositionFiresOnlyInTracingModes) {
  for (TraceMode mode : {TraceMode::kRelease, TraceMode::kInterposed}) {
    ObjcRuntime rt(mode);
    ObjcClass* cls = rt.DefineClass("C");
    rt.AddMethod(cls, "work", [](ObjcRuntime&, ObjcObject*, std::span<const int64_t>) {
      return int64_t{7};
    });
    int pre_calls = 0;
    int post_calls = 0;
    InterpositionHook hook;
    hook.pre = [&](ObjcObject*, Selector, std::span<const int64_t>) { pre_calls++; };
    hook.post = [&](ObjcObject*, Selector, std::span<const int64_t>, int64_t result) {
      post_calls++;
      EXPECT_EQ(result, 7);
    };
    hook.want_return = true;
    rt.Interpose("work", std::move(hook));

    ObjcObject* object = rt.CreateObject<ObjcObject>(cls);
    EXPECT_EQ(rt.MsgSend(object, "work"), 7);
    if (mode == TraceMode::kRelease) {
      EXPECT_EQ(pre_calls, 0) << "release dispatch must bypass the table";
    } else {
      EXPECT_EQ(pre_calls, 1);
      EXPECT_EQ(post_calls, 1);
    }
  }
}

TEST(AppKit, RedrawsAndGraphicsStateBalance) {
  ObjcRuntime rt;
  AppKit app(rt, AppKitConfig{});

  UiEvent expose{UiEvent::Kind::kExposeFull, 0, 0};
  uint64_t ops = app.RunLoopIteration(std::span<const UiEvent>(&expose, 1));
  EXPECT_GT(ops, 0u);
  EXPECT_EQ(app.context()->save_count, app.context()->restore_count);
  EXPECT_EQ(app.context()->stack.size(), 1u) << "graphics stack must balance";
  EXPECT_EQ(app.run_loop()->iterations, 1u);

  // Nothing dirty: a second iteration with no events draws nothing.
  uint64_t idle_ops = app.RunLoopIteration({});
  EXPECT_EQ(idle_ops, 0u);
}

TEST(AppKit, CursorBalancedWithoutBug) {
  ObjcRuntime rt;
  AppKit app(rt, AppKitConfig{});

  std::vector<UiEvent> events;
  for (int i = 0; i < 10; i++) {
    events.push_back({UiEvent::Kind::kMouseMove, (i % 5) * 100 + 50, 50});
  }
  app.RunLoopIteration(std::span<const UiEvent>(events.data(), events.size()));
  // Exactly one view is under the pointer at the end.
  EXPECT_EQ(app.cursor_pushes(), app.cursor_pops() + 1);
  EXPECT_EQ(app.cursor_stack_depth(), 1u);
}

TEST(AppKit, CursorBugDuplicatesPushes) {
  ObjcRuntime rt;
  AppKitConfig config;
  config.cursor_unbalanced_bug = true;
  AppKit app(rt, config);

  std::vector<UiEvent> events;
  for (int i = 0; i < 30; i++) {
    events.push_back({UiEvent::Kind::kMouseMove, (i % 5) * 100 + 50, 50});
  }
  app.RunLoopIteration(std::span<const UiEvent>(events.data(), events.size()));
  // Lost mouse-exited events leave extra cursors on the stack (§3.5.3).
  EXPECT_GT(app.cursor_pushes(), app.cursor_pops() + 1);
  EXPECT_GT(app.cursor_stack_depth(), 1u);
}

TEST(AppKit, NonLifoRestoreBug) {
  ObjcRuntime rt;
  AppKitConfig config;
  config.backend_non_lifo_bug = true;
  AppKit app(rt, config);

  GraphicsContext* gc = app.context();
  rt.MsgSend(gc, "saveGraphicsState");
  rt.MsgSend(gc, "saveGraphicsState");
  rt.MsgSend(gc, "saveGraphicsState");
  // LIFO restore works; non-LIFO restore fails under the bug.
  EXPECT_EQ(rt.MsgSend(gc, "restoreGraphicsStateToDepth", {3}), 0);
  EXPECT_EQ(rt.MsgSend(gc, "restoreGraphicsStateToDepth", {1}), -1);
  EXPECT_EQ(gc->non_lifo_failures, 1u);

  // A healthy back end handles the same sequence.
  ObjcRuntime rt2;
  AppKit app2(rt2, AppKitConfig{});
  GraphicsContext* gc2 = app2.context();
  rt2.MsgSend(gc2, "saveGraphicsState");
  rt2.MsgSend(gc2, "saveGraphicsState");
  EXPECT_EQ(rt2.MsgSend(gc2, "restoreGraphicsStateToDepth", {1}), 0);
  EXPECT_EQ(gc2->stack.size(), 1u);
}

TEST(GuiTesla, ManifestCoversAllSelectors) {
  ObjcRuntime rt(TraceMode::kTesla);
  AppKit app(rt, AppKitConfig{});
  auto manifest = GuiManifest(app);
  ASSERT_TRUE(manifest.ok()) << manifest.error().ToString();
  ASSERT_EQ(manifest->automata.size(), 1u);
  // ~110 instrumented selectors: 21 named + 80 filler.
  EXPECT_GE(app.InstrumentedSelectors().size(), 100u);
  // The automaton's alphabet holds init/cleanup/site plus one symbol per
  // selector.
  EXPECT_GE(manifest->automata[0].alphabet.size(), app.InstrumentedSelectors().size());
  EXPECT_LE(manifest->automata[0].state_count, 8u)
      << "ATLEAST(0, ...) must lower to a compact self-loop automaton";
}

TEST(GuiTesla, TraceRevealsCursorImbalance) {
  runtime::Runtime tesla_rt(TestRuntimeOptions());
  runtime::ThreadContext ctx(tesla_rt);
  ObjcRuntime rt(TraceMode::kTesla);
  AppKitConfig config;
  config.cursor_unbalanced_bug = true;
  AppKit app(rt, config);

  auto tesla = GuiTesla::Install(tesla_rt, ctx, app);
  ASSERT_TRUE(tesla.ok()) << tesla.error().ToString();
  (*tesla)->EnableTraceRecording(true);

  std::vector<UiEvent> events;
  for (int i = 0; i < 12; i++) {
    events.push_back({UiEvent::Kind::kMouseMove, (i % 4) * 100 + 50, 50});
  }
  for (int iteration = 0; iteration < 5; iteration++) {
    app.RunLoopIteration(std::span<const UiEvent>(events.data(), events.size()));
  }

  // The fig. 8 tracing automaton accepts everything (it's a tracing net, not
  // a checker)...
  EXPECT_EQ(tesla_rt.stats().violations, 0u);
  EXPECT_GT((*tesla)->total_events(), 0u);

  // ...but the recorded trace diagnoses the bug: pushes exceed pops.
  auto imbalance = (*tesla)->CursorImbalanceByIteration();
  int64_t total = 0;
  for (const auto& [iteration, delta] : imbalance) {
    total += delta;
  }
  EXPECT_GT(total, 1) << "duplicated cursor pushes must show up in the trace";
}

TEST(GuiTesla, CleanRunTracksEventsWithoutViolations) {
  runtime::Runtime tesla_rt(TestRuntimeOptions());
  runtime::ThreadContext ctx(tesla_rt);
  ObjcRuntime rt(TraceMode::kTesla);
  AppKit app(rt, AppKitConfig{});

  auto tesla = GuiTesla::Install(tesla_rt, ctx, app);
  ASSERT_TRUE(tesla.ok());

  UiEvent expose{UiEvent::Kind::kExposeFull, 0, 0};
  for (int i = 0; i < 3; i++) {
    app.RunLoopIteration(std::span<const UiEvent>(&expose, 1));
  }
  EXPECT_EQ(tesla_rt.stats().violations, 0u);
  EXPECT_EQ(tesla_rt.stats().bound_entries, 3u);
  EXPECT_GT(tesla_rt.stats().transitions, 0u);
}


TEST(GuiTesla, SaveRestoreProfilingFindsElidablePairs) {
  // §3.5.3: profiling traces exposes save/restore pairs whose intervening
  // work only touches colour and position — candidates for elision.
  runtime::Runtime tesla_rt(TestRuntimeOptions());
  runtime::ThreadContext ctx(tesla_rt);
  ObjcRuntime rt(TraceMode::kTesla);
  AppKitConfig config;
  config.filler_method_count = 0;  // cells emit only colour/position traffic
  AppKit app(rt, config);
  auto tesla = GuiTesla::Install(tesla_rt, ctx, app);
  ASSERT_TRUE(tesla.ok());
  (*tesla)->EnableTraceRecording(true);

  UiEvent expose{UiEvent::Kind::kExposeFull, 0, 0};
  app.RunLoopIteration(std::span<const UiEvent>(&expose, 1));

  auto profile = (*tesla)->AnalyseSaveRestorePairs();
  EXPECT_GT(profile.total_pairs, 0u);
  // Without auxiliary cell operations, every pair is elidable.
  EXPECT_EQ(profile.elidable_pairs, profile.total_pairs);

  // With filler methods the cells do real work between save and restore.
  runtime::Runtime tesla_rt2(TestRuntimeOptions());
  runtime::ThreadContext ctx2(tesla_rt2);
  ObjcRuntime rt2(TraceMode::kTesla);
  AppKit app2(rt2, AppKitConfig{});
  auto tesla2 = GuiTesla::Install(tesla_rt2, ctx2, app2);
  ASSERT_TRUE(tesla2.ok());
  (*tesla2)->EnableTraceRecording(true);
  app2.RunLoopIteration(std::span<const UiEvent>(&expose, 1));
  auto busy = (*tesla2)->AnalyseSaveRestorePairs();
  EXPECT_GT(busy.total_pairs, 0u);
  EXPECT_LT(busy.elidable_pairs, busy.total_pairs);
}

}  // namespace
}  // namespace tesla::objsim
