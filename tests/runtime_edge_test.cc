// Edge-case coverage for libtesla semantics beyond the core lifecycle tests:
// XOR exclusivity, ATLEAST counting, asymmetric bounds, strict automata,
// overflow recovery, multi-threaded global stores, and handler plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "runtime/runtime.h"
#include "runtime/scope.h"

namespace tesla {
namespace {

using automata::CompileAssertion;
using runtime::Binding;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::ThreadContext;
using runtime::ViolationKind;

RuntimeOptions TestOptions() {
  RuntimeOptions options;
  options.fail_stop = false;
  return options;
}

Symbol S(const char* name) { return InternString(name); }

struct Fixture {
  explicit Fixture(const std::string& source, RuntimeOptions options = TestOptions(),
                   const automata::LowerOptions& lower = {})
      : rt(options) {
    auto automaton = CompileAssertion(source, lower, "edge");
    EXPECT_TRUE(automaton.ok()) << automaton.error().ToString();
    automata::Manifest manifest;
    manifest.Add(std::move(automaton.value()));
    EXPECT_TRUE(rt.Register(manifest).ok());
    id = static_cast<uint32_t>(rt.FindAutomaton("edge"));
  }
  Runtime rt;
  uint32_t id = 0;
};

TEST(RuntimeEdge, XorForbidsMixingBranchesUnderStrict) {
  Fixture f("TESLA_WITHIN(syscall, strict(previously(ca(x) == 0 ^ cb(x) == 0)))");
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {1};
  f.rt.OnFunctionReturn(ctx, S("ca"), args, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);
  // The other branch fires: under strict ^ this is a violation.
  f.rt.OnFunctionReturn(ctx, S("cb"), args, 0);
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(RuntimeEdge, XorEitherBranchAloneSatisfies) {
  for (const char* branch : {"ca", "cb"}) {
    Fixture f("TESLA_WITHIN(syscall, previously(ca(x) == 0 ^ cb(x) == 0))");
    ThreadContext ctx(f.rt);
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    int64_t args[] = {1};
    f.rt.OnFunctionReturn(ctx, S(branch), args, 0);
    Binding site[] = {{0, 1}};
    f.rt.OnAssertionSite(ctx, f.id, site);
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
    EXPECT_EQ(f.rt.stats().violations, 0u) << branch;
  }
}

TEST(RuntimeEdge, AtLeastCountsAtRuntime) {
  // Two ticks required before the site.
  Fixture f("TESLA_WITHIN(syscall, previously(ATLEAST(2, tick())))");
  for (int ticks = 0; ticks <= 3; ticks++) {
    ThreadContext ctx(f.rt);
    f.rt.ResetStats();
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    for (int i = 0; i < ticks; i++) {
      f.rt.OnFunctionCall(ctx, S("tick"), {});
    }
    f.rt.OnAssertionSite(ctx, f.id, {});
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
    if (ticks >= 2) {
      EXPECT_EQ(f.rt.stats().violations, 0u) << ticks << " ticks";
    } else {
      EXPECT_EQ(f.rt.stats().violations, 1u) << ticks << " ticks";
    }
  }
}

TEST(RuntimeEdge, AsymmetricBounds) {
  // Bound opens at returnfrom(setup) and closes at call(teardown).
  Fixture f("TESLA_PERTHREAD(returnfrom(setup), call(teardown),"
            " previously(work(x) == 0))");
  ThreadContext ctx(f.rt);

  // Events before the bound opens are ignored.
  Binding site[] = {{0, 9}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 0u);

  f.rt.OnFunctionReturn(ctx, S("setup"), {}, 0);  // «init»
  int64_t args[] = {9};
  f.rt.OnFunctionReturn(ctx, S("work"), args, 0);
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionCall(ctx, S("teardown"), {});  // «cleanup»
  EXPECT_EQ(f.rt.stats().violations, 0u);
  EXPECT_GE(f.rt.stats().accepts, 1u);

  // After cleanup, the site is out of bound again.
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(RuntimeEdge, EventuallyRearmedByRepeatedSiteVisits) {
  // After the obligation is met, reaching the site again re-arms it.
  Fixture f("TESLA_WITHIN(syscall, eventually(audit(x) == 0))");
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  Binding site[] = {{0, 4}};
  int64_t args[] = {4};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("audit"), args, 0);  // satisfied
  f.rt.OnAssertionSite(ctx, f.id, site);            // re-armed
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);  // second audit never came
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(RuntimeEdge, PreviouslySatisfiedSurvivesRepeatedSites) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {4};
  f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  Binding site[] = {{0, 4}};
  for (int i = 0; i < 5; i++) {
    f.rt.OnAssertionSite(ctx, f.id, site);
  }
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(RuntimeEdge, OverflowRecoversOnNextBound) {
  RuntimeOptions options = TestOptions();
  options.instances_per_context = 3;
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);
  ThreadContext ctx(f.rt);

  // Exhaust the pool in one bound.
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  for (int64_t v = 0; v < 6; v++) {
    int64_t args[] = {v};
    f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  }
  EXPECT_GT(f.rt.stats().overflows, 0u);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  // The pool drains at cleanup; the next bound works normally.
  uint64_t violations_before = f.rt.stats().violations;
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {7};
  f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  Binding site[] = {{0, 7}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, violations_before);
}

TEST(RuntimeEdge, OverflowReportsViolationKindAndMatchesContextCounter) {
  // When the per-thread pool is exhausted, dropped clones must surface as
  // kOverflow violations through handlers, and the per-context overflow
  // counter must agree with the aggregated runtime statistic.
  RuntimeOptions options = TestOptions();
  options.instances_per_context = 2;
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))", options);
  runtime::CountingHandler handler;
  f.rt.AddHandler(&handler);
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  for (int64_t v = 0; v < 8; v++) {
    int64_t args[] = {v};
    f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  }
  EXPECT_GT(ctx.pool_overflows(), 0u);
  EXPECT_EQ(f.rt.stats().overflows, ctx.pool_overflows());
  // Every overflow was reported as a violation of kind kOverflow.
  size_t overflow_violations = 0;
  for (const runtime::Violation& v : handler.violations()) {
    if (v.kind == ViolationKind::kOverflow) overflow_violations++;
  }
  EXPECT_EQ(overflow_violations, f.rt.stats().overflows);

  // Instances that DID fit keep working: value 0 was admitted before the
  // pool filled, so its assertion site must not raise a violation.
  uint64_t violations_before = f.rt.stats().violations;
  Binding site[] = {{0, 0}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, violations_before);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
}

TEST(RuntimeEdge, GlobalShardOverflowReportsAndRecovers) {
  // Global automata store instances in runtime-owned shard contexts, not the
  // caller's ThreadContext: overflow accounting and recovery must work there
  // too. The shard pool drains at bound exit like the per-thread one.
  RuntimeOptions options = TestOptions();
  options.instances_per_context = 2;
  Fixture f("TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))",
            options);
  runtime::CountingHandler handler;
  f.rt.AddHandler(&handler);
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  for (int64_t v = 0; v < 8; v++) {
    int64_t args[] = {v};
    f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  }
  EXPECT_GT(f.rt.stats().overflows, 0u);
  EXPECT_EQ(ctx.pool_overflows(), 0u);  // the thread-local pool was untouched
  size_t overflow_violations = 0;
  for (const runtime::Violation& v : handler.violations()) {
    if (v.kind == ViolationKind::kOverflow) overflow_violations++;
  }
  EXPECT_EQ(overflow_violations, f.rt.stats().overflows);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  // The shard drains at cleanup; the next bound binds and checks normally.
  uint64_t violations_before = f.rt.stats().violations;
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {42};
  f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  Binding site[] = {{0, 42}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, violations_before);
}

TEST(RuntimeEdge, TwoVariableBindingRequiresBothToMatch) {
  Fixture f("TESLA_WITHIN(syscall, previously(grant(subject, object) == 0))");
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {10, 20};
  f.rt.OnFunctionReturn(ctx, S("grant"), args, 0);

  // Same subject, different object: the instance must not match.
  Binding wrong[] = {{0, 10}, {1, 99}};
  f.rt.OnAssertionSite(ctx, f.id, wrong);
  EXPECT_EQ(f.rt.stats().violations, 1u);

  Binding right[] = {{0, 10}, {1, 20}};
  f.rt.OnAssertionSite(ctx, f.id, right);
  EXPECT_EQ(f.rt.stats().violations, 1u);  // no new violation
}

TEST(RuntimeEdge, RepeatedArgumentVariableMustAgree) {
  // f(x, x): both positions bind the same variable.
  Fixture f("TESLA_WITHIN(syscall, previously(pair(x, x) == 0))");
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t unequal[] = {1, 2};
  f.rt.OnFunctionReturn(ctx, S("pair"), unequal, 0);  // does not match the pattern
  Binding site[] = {{0, 1}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 1u);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t equal[] = {3, 3};
  f.rt.OnFunctionReturn(ctx, S("pair"), equal, 0);
  Binding site3[] = {{0, 3}};
  f.rt.OnAssertionSite(ctx, f.id, site3);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 1u);  // unchanged
}

TEST(RuntimeEdge, FlagsAndBitmaskMatching) {
  automata::LowerOptions lower;
  lower.flags["F_READ"] = 0x1;
  lower.flags["F_WRITE"] = 0x2;
  Fixture f("TESLA_WITHIN(syscall, previously(open_file(x, flags(F_READ)) == 0))", TestOptions(),
            lower);
  ThreadContext ctx(f.rt);

  // F_READ|F_WRITE satisfies flags(F_READ) (minimal bitfield).
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {5, 0x3};
  f.rt.OnFunctionReturn(ctx, S("open_file"), args, 0);
  Binding site[] = {{0, 5}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);

  // Write-only does not include F_READ: pattern does not match, site fails.
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t wronly[] = {5, 0x2};
  f.rt.OnFunctionReturn(ctx, S("open_file"), wronly, 0);
  f.rt.OnAssertionSite(ctx, f.id, site);
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(RuntimeEdge, BareCallPatternIgnoresArguments) {
  Fixture f("TESLA_WITHIN(syscall, previously(called(prepare)))");
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {1, 2, 3};
  f.rt.OnFunctionCall(ctx, S("prepare"), args);
  f.rt.OnAssertionSite(ctx, f.id, {});
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(RuntimeEdge, PatternWithFewerArgsThanEventMatchesPrefix) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {8, 123, 456};  // extra trailing arguments
  f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  Binding site[] = {{0, 8}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(RuntimeEdge, GlobalContextUnderRealThreads) {
  Fixture f("TESLA_GLOBAL(call(begin_txn), returnfrom(end_txn), previously(lock(x) == 0))");
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::atomic<int> ready{0};

  // Thread 0 opens/closes bounds and performs checks + sites; others hammer
  // unrelated events through the same global store. No violations expected
  // and — crucially under TSan-less CI — no crashes or lost instances.
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; t++) {
    workers.emplace_back([&f, t] {
      ThreadContext ctx(f.rt);
      for (int round = 0; round < kRounds; round++) {
        if (t == 0) {
          f.rt.OnFunctionCall(ctx, S("begin_txn"), {});
          int64_t args[] = {round % 3};
          f.rt.OnFunctionReturn(ctx, S("lock"), args, 0);
          Binding site[] = {{0, round % 3}};
          f.rt.OnAssertionSite(ctx, f.id, site);
          f.rt.OnFunctionReturn(ctx, S("end_txn"), {}, 0);
        } else {
          int64_t args[] = {t};
          f.rt.OnFunctionCall(ctx, S("unrelated"), args);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  (void)ready;
  EXPECT_EQ(f.rt.stats().violations, 0u);
  EXPECT_EQ(f.rt.stats().bound_entries, static_cast<uint64_t>(kRounds));
}

TEST(RuntimeEdge, HandlersSeeLifecycleInOrder) {
  struct Recorder : runtime::EventHandler {
    std::vector<std::string> events;
    void OnInstanceNew(const runtime::ClassInfo&, const runtime::Instance&) override {
      events.push_back("new");
    }
    void OnClone(const runtime::ClassInfo&, const runtime::Instance&,
                 const runtime::Instance&) override {
      events.push_back("clone");
    }
    void OnTransition(const runtime::ClassInfo&, const runtime::Instance&, automata::StateSet,
                      uint16_t, automata::StateSet) override {
      events.push_back("step");
    }
    void OnAccept(const runtime::ClassInfo&, const runtime::Instance&) override {
      events.push_back("accept");
    }
    void OnViolation(const runtime::ClassInfo&, const runtime::Violation&) override {
      events.push_back("violation");
    }
  };
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  Recorder recorder;
  f.rt.AddHandler(&recorder);
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {2};
  f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  Binding site[] = {{0, 2}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  // Lazy init: the first real event triggers «new» (+init step), then the
  // clone for (x=2), the site step, and two accepts at cleanup.
  std::vector<std::string> expected = {"new", "step", "step", "clone", "step",
                                       "step", "accept", "step", "accept"};
  EXPECT_EQ(recorder.events, expected);
}

TEST(RuntimeEdge, MultipleRuntimesAreIndependent) {
  Fixture a("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  Fixture b("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx_a(a.rt);
  ThreadContext ctx_b(b.rt);

  a.rt.OnFunctionCall(ctx_a, S("syscall"), {});
  Binding site[] = {{0, 1}};
  a.rt.OnAssertionSite(ctx_a, a.id, site);
  EXPECT_EQ(a.rt.stats().violations, 1u);
  EXPECT_EQ(b.rt.stats().violations, 0u);
}

TEST(RuntimeEdge, UnknownAutomatonIdIsIgnored) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);
  f.rt.OnAssertionSite(ctx, 12345, {});
  EXPECT_EQ(f.rt.stats().violations, 0u);
}

TEST(RuntimeEdge, FieldIncrementAndDecrementPatterns) {
  Fixture f("TESLA_WITHIN(syscall, TSEQUENCE(s.refs++, s.refs--))");
  ThreadContext ctx(f.rt);
  // Balanced ref-count: ++ then -- completes the sequence.
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFieldStore(ctx, S("refs"), 500, 1, 2);  // ++
  f.rt.OnFieldStore(ctx, S("refs"), 500, 2, 1);  // --
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 0u);

  // Unbalanced: ++ without -- leaves the sequence incomplete at cleanup.
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFieldStore(ctx, S("refs"), 501, 0, 1);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  EXPECT_EQ(f.rt.stats().violations, 1u);
}

TEST(RuntimeEdge, FunctionScopeCountsArgumentTruncation) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))");
  ThreadContext ctx(f.rt);
  {
    runtime::FunctionScope wide(&f.rt, &ctx, S("wide_fn"),
                                {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  }
  // A truncated scope fires two truncated events: its call and its return.
  EXPECT_EQ(f.rt.stats().arg_truncations, 2u);
  {
    runtime::FunctionScope narrow(&f.rt, &ctx, S("narrow_fn"), {1, 2, 3});
  }
  EXPECT_EQ(f.rt.stats().arg_truncations, 2u);
  {
    runtime::FunctionScope exact(&f.rt, &ctx, S("exact_fn"),
                                 {1, 2, 3, 4, 5, 6, 7, 8});
  }
  EXPECT_EQ(f.rt.stats().arg_truncations, 2u);
}

TEST(RuntimeEdge, ThrowingViolationHandlerReleasesBatchShardLocks) {
  // Regression: OnEvents' global-batch path takes every shard lock and marks
  // the thread as batch owner before dispatching. It used to unlock with
  // straight-line code, so a violation handler throwing out of the batch
  // leaked all shard locks and the stale owner — and the next global
  // dispatch on any other thread deadlocked on the first shard's spinlock.
  struct ThrowingHandler : runtime::EventHandler {
    void OnViolation(const runtime::ClassInfo&, const runtime::Violation&) override {
      throw std::runtime_error("violation handler bailed");
    }
  };
  Fixture f("TESLA_GLOBAL(call(begin_txn), returnfrom(end_txn), previously(lock(x) == 0))");
  ThrowingHandler handler;
  f.rt.AddHandler(&handler);
  ThreadContext ctx(f.rt);

  // A batch whose site violates mid-way: the handler's exception unwinds
  // out of OnEvents while the batch still holds every shard lock.
  std::vector<runtime::Event> bad;
  bad.push_back(runtime::Event::Call(S("begin_txn"), {}));
  Binding site[] = {{0, 1}};
  bad.push_back(runtime::Event::Site(f.id, site));
  EXPECT_THROW(f.rt.OnEvents(ctx, bad), std::runtime_error);
  EXPECT_EQ(f.rt.stats().violations, 1u);

  // A second batch on another thread must make progress (pre-fix: deadlock
  // here, with the test hanging on the shard spinlock).
  std::atomic<bool> completed{false};
  std::thread other([&f, &completed] {
    ThreadContext ctx2(f.rt);
    std::vector<runtime::Event> good;
    good.push_back(runtime::Event::Call(S("begin_txn"), {}));
    int64_t args[] = {2};
    good.push_back(runtime::Event::Return(S("lock"), args, 0));
    Binding site2[] = {{0, 2}};
    good.push_back(runtime::Event::Site(f.id, site2));
    good.push_back(runtime::Event::Return(S("end_txn"), {}, 0));
    f.rt.OnEvents(ctx2, good);
    completed.store(true);
  });
  other.join();
  EXPECT_TRUE(completed.load());
  EXPECT_EQ(f.rt.stats().violations, 1u);  // the good batch was clean
}

TEST(RuntimeEdge, UnmatchedReturnClampsStackDepth) {
  // Regression: a kFunctionReturn with no tracked call drove stack_depth_
  // negative, and every later incallstack() check on that slot was poisoned
  // (depth 1 read as 0). A replayed flight-recorder capture whose ring
  // wrapped mid-call starts with exactly this shape — the batch below is
  // that capture's event stream.
  Fixture f("TESLA_WITHIN(syscall, incallstack(inner) || previously(check(x) == 0))");
  ThreadContext ctx(f.rt);

  std::vector<runtime::Event> stream;
  // The wrap point: `inner`'s return survives, its call did not.
  stream.push_back(runtime::Event::Return(S("inner"), {}, 0));
  // A normal bound afterwards, with the site reached under incallstack(inner).
  stream.push_back(runtime::Event::Call(S("syscall"), {}));
  stream.push_back(runtime::Event::Call(S("inner"), {}));
  Binding site[] = {{0, 1}};
  stream.push_back(runtime::Event::Site(f.id, site));
  stream.push_back(runtime::Event::Return(S("inner"), {}, 0));
  stream.push_back(runtime::Event::Return(S("syscall"), {}, 0));
  f.rt.OnEvents(ctx, stream);

  // Pre-fix: depth went -1, the later call only restored it to 0, the site
  // saw incallstack(inner) == false and reported a bogus violation.
  EXPECT_EQ(f.rt.stats().violations, 0u);
  EXPECT_EQ(f.rt.stats().unmatched_returns, 1u);

  // Balanced streams never touch the counter.
  f.rt.OnFunctionCall(ctx, S("inner"), {});
  f.rt.OnFunctionReturn(ctx, S("inner"), {}, 0);
  EXPECT_EQ(f.rt.stats().unmatched_returns, 1u);
}

void FailStopScenario() {
  RuntimeOptions options;
  options.fail_stop = true;  // paper default
  Runtime rt(options);
  auto automaton =
      CompileAssertion("TESLA_WITHIN(syscall, previously(check(x) == 0))", {}, "edge");
  automata::Manifest manifest;
  manifest.Add(std::move(automaton.value()));
  (void)rt.Register(manifest);
  ThreadContext ctx(rt);
  rt.OnFunctionCall(ctx, S("syscall"), {});
  Binding site[] = {{0, 1}};
  rt.OnAssertionSite(ctx, 0, site);
}

TEST(RuntimeEdgeDeathTest, FailStopAborts) {
  ASSERT_DEATH(FailStopScenario(), "fail-stop");
}

}  // namespace
}  // namespace tesla
