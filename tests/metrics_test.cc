// tesla::metrics: per-class counters, transition coverage, histograms,
// exposition formats, the capture-footer round trip, and ResetStats hygiene.
#include "metrics/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "automata/lower.h"
#include "automata/manifest.h"
#include "kernelsim/assertions.h"
#include "kernelsim/kernel.h"
#include "kernelsim/workloads.h"
#include "metrics/collector.h"
#include "metrics/metrics.h"
#include "runtime/runtime.h"
#include "support/log.h"
#include "trace/format.h"
#include "trace/replay.h"

namespace tesla {
namespace {

using metrics::ClassCounter;
using metrics::MetricsMode;
using runtime::Binding;
using runtime::Runtime;
using runtime::RuntimeOptions;
using runtime::ThreadContext;

Symbol S(const char* name) { return InternString(name); }

RuntimeOptions TestOptions(MetricsMode mode) {
  RuntimeOptions options;
  options.fail_stop = false;
  options.metrics_mode = mode;
  return options;
}

struct Fixture {
  explicit Fixture(const char* source, RuntimeOptions options) : rt(options) {
    auto automaton = automata::CompileAssertion(source, {}, "m");
    EXPECT_TRUE(automaton.ok());
    automata::Manifest manifest;
    manifest.Add(std::move(automaton.value()));
    EXPECT_TRUE(rt.Register(manifest).ok());
    id = static_cast<uint32_t>(rt.FindAutomaton("m"));
  }
  Runtime rt;
  uint32_t id = 0;
};

uint64_t Counter(const metrics::ClassSnapshot& cls, ClassCounter kind) {
  return cls.counters[static_cast<size_t>(kind)];
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp") + "/" + name;
}

TEST(Metrics, BucketMath) {
  EXPECT_EQ(metrics::BucketFor(0), 0u);
  EXPECT_EQ(metrics::BucketFor(1), 0u);
  EXPECT_EQ(metrics::BucketFor(2), 1u);
  EXPECT_EQ(metrics::BucketFor(3), 1u);
  EXPECT_EQ(metrics::BucketFor(1024), 10u);
  EXPECT_EQ(metrics::BucketFor(UINT64_MAX), 63u);
  EXPECT_EQ(metrics::BucketUpperNs(0), 1u);
  EXPECT_EQ(metrics::BucketUpperNs(1), 3u);
  EXPECT_EQ(metrics::BucketUpperNs(10), 2047u);
  EXPECT_EQ(metrics::BucketUpperNs(63), UINT64_MAX);
  // Every sample lands in a bucket whose range contains it.
  for (uint64_t ns : {0ull, 1ull, 7ull, 100ull, 65536ull, 123456789ull}) {
    size_t bucket = metrics::BucketFor(ns);
    EXPECT_LE(ns, metrics::BucketUpperNs(bucket));
    if (bucket > 0) {
      EXPECT_GT(ns, metrics::BucketUpperNs(bucket - 1));
    }
  }
}

TEST(Metrics, OffModeHasNoCollector) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))",
            TestOptions(MetricsMode::kOff));
  EXPECT_EQ(f.rt.collector(), nullptr);
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  // CollectMetrics still reports global stats; classes stay empty.
  metrics::Snapshot snapshot = f.rt.CollectMetrics();
  EXPECT_EQ(snapshot.mode, MetricsMode::kOff);
  EXPECT_GT(snapshot.stats.events, 0u);
  EXPECT_TRUE(snapshot.classes.empty());
}

TEST(Metrics, CountersTrackInstanceLifecycle) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))",
            TestOptions(MetricsMode::kCounters));
  ASSERT_NE(f.rt.collector(), nullptr);
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  for (int64_t v = 0; v < 3; v++) {
    int64_t args[] = {v};
    f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  }
  Binding site[] = {{0, 1}};
  f.rt.OnAssertionSite(ctx, f.id, site);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  metrics::Snapshot snapshot = f.rt.CollectMetrics();
  ASSERT_EQ(snapshot.classes.size(), 1u);
  const metrics::ClassSnapshot& cls = snapshot.classes[0];
  EXPECT_EQ(cls.name, "m");
  EXPECT_GE(Counter(cls, ClassCounter::instances_created), 1u);
  EXPECT_GE(Counter(cls, ClassCounter::instances_cloned), 3u);
  EXPECT_GT(Counter(cls, ClassCounter::transitions), 0u);
  EXPECT_GE(Counter(cls, ClassCounter::accepts), 1u);
  EXPECT_EQ(Counter(cls, ClassCounter::violations), 0u);
  // Per-class transitions also feed the global stat; the per-class view can
  // never exceed what the runtime counted overall.
  EXPECT_LE(Counter(cls, ClassCounter::transitions), snapshot.stats.transitions);
}

TEST(Metrics, DeadOrAlternativeIsListedUncovered) {
  // Only the a() arm of the disjunction is ever driven; every transition
  // mentioning b() must be reported never-fired — the paper's "logical
  // coverage" signal that an alternative is dead in practice.
  Fixture f("TESLA_WITHIN(syscall, previously(a(x) == 0 || b(x) == 0))",
            TestOptions(MetricsMode::kCounters));
  ThreadContext ctx(f.rt);
  for (int64_t v = 0; v < 4; v++) {
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    int64_t args[] = {v};
    f.rt.OnFunctionReturn(ctx, S("a"), args, 0);
    Binding site[] = {{0, v}};
    f.rt.OnAssertionSite(ctx, f.id, site);
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  }
  EXPECT_EQ(f.rt.stats().violations, 0u);

  metrics::Snapshot snapshot = f.rt.CollectMetrics();
  ASSERT_EQ(snapshot.classes.size(), 1u);
  const metrics::ClassSnapshot& cls = snapshot.classes[0];
  EXPECT_GT(cls.CoveredTransitions(), 0u);
  EXPECT_LT(cls.CoveredTransitions(), cls.transitions.size());

  bool saw_fired_a = false;
  bool saw_dead_b = false;
  for (const metrics::TransitionCoverage& t : cls.transitions) {
    if (t.description.find("a(") != std::string::npos && t.fired) {
      saw_fired_a = true;
    }
    if (t.description.find("b(") != std::string::npos) {
      EXPECT_FALSE(t.fired) << "dead alternative fired: " << t.description;
      saw_dead_b = true;
    }
  }
  EXPECT_TRUE(saw_fired_a);
  EXPECT_TRUE(saw_dead_b);

  // The dead-clause report names the class and at least one b() transition.
  const std::string uncovered = metrics::RenderUncovered(snapshot);
  EXPECT_NE(uncovered.find("m"), std::string::npos);
  EXPECT_NE(uncovered.find("b("), std::string::npos);
}

TEST(Metrics, FullyExercisedAutomatonReportsFullCoverage) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))",
            TestOptions(MetricsMode::kCounters));
  ThreadContext ctx(f.rt);

  // Drive every statically-valid path: the bypass bound (no check), the
  // checked bound with a site visit, repeated checks (self-loops), and a
  // checked bound that exits without a site.
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);

  for (int round = 0; round < 2; round++) {
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    for (int64_t v = 0; v < 3; v++) {
      int64_t args[] = {v};
      f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
      f.rt.OnFunctionReturn(ctx, S("check"), args, 0);  // repeat: self-loop
    }
    Binding site[] = {{0, 1}};
    f.rt.OnAssertionSite(ctx, f.id, site);
    f.rt.OnAssertionSite(ctx, f.id, site);  // repeat: post-site self-loop
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  }

  metrics::Snapshot snapshot = f.rt.CollectMetrics();
  ASSERT_EQ(snapshot.classes.size(), 1u);
  const metrics::ClassSnapshot& cls = snapshot.classes[0];
  for (const metrics::TransitionCoverage& t : cls.transitions) {
    EXPECT_TRUE(t.fired) << "never fired: " << t.description;
  }
  EXPECT_EQ(cls.CoveredTransitions(), cls.transitions.size());
  EXPECT_DOUBLE_EQ(cls.CoverageRatio(), 1.0);
  // Nothing to report: the dead-clause listing is empty.
  EXPECT_TRUE(metrics::RenderUncovered(snapshot).empty());
}

TEST(Metrics, HistogramsRecordDispatchLatency) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))",
            TestOptions(MetricsMode::kFull));
  ThreadContext ctx(f.rt);
  for (int64_t v = 0; v < 32; v++) {
    f.rt.OnFunctionCall(ctx, S("syscall"), {});
    int64_t args[] = {v};
    f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
    Binding site[] = {{0, v}};
    f.rt.OnAssertionSite(ctx, f.id, site);
    f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  }

  metrics::Snapshot snapshot = f.rt.CollectMetrics();
  // EventKind order: call, return, field_store, assertion_site.
  const metrics::HistogramData& calls = snapshot.histograms[0];
  const metrics::HistogramData& returns = snapshot.histograms[1];
  const metrics::HistogramData& sites = snapshot.histograms[3];
  EXPECT_EQ(calls.count, 32u);
  EXPECT_EQ(returns.count, 64u);  // one check + one syscall return per round
  EXPECT_EQ(sites.count, 32u);
  uint64_t total = 0;
  for (size_t kind = 0; kind < metrics::kEventKinds; kind++) {
    total += snapshot.histograms[kind].count;
  }
  EXPECT_EQ(total, f.rt.stats().events);
  // Quantiles are ordered and bounded by the maximum.
  EXPECT_LE(sites.QuantileNs(0.50), sites.QuantileNs(0.99));
  EXPECT_LE(sites.QuantileNs(0.99), sites.MaxNs());
}

TEST(Metrics, ResetStatsClearsShardPoolsAndCollector) {
  // A global automaton stores instances in runtime-owned shard contexts.
  // Overflow the shard pool, then verify ResetStats rewinds the derived
  // per-shard tallies and the metrics collector along with RuntimeStats —
  // a reset that left them behind would double-report on the next snapshot.
  SetLogLevel(LogLevel::kSilent);
  RuntimeOptions options = TestOptions(MetricsMode::kCounters);
  options.instances_per_context = 2;
  Fixture f("TESLA_GLOBAL(call(syscall), returnfrom(syscall), previously(check(x) == 0))",
            options);
  ThreadContext ctx(f.rt);

  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  for (int64_t v = 0; v < 8; v++) {
    int64_t args[] = {v};
    f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  }
  EXPECT_GT(f.rt.stats().overflows, 0u);
  EXPECT_EQ(f.rt.shard_pool_overflows(), f.rt.stats().overflows);
  metrics::Snapshot before = f.rt.CollectMetrics();
  ASSERT_EQ(before.classes.size(), 1u);
  EXPECT_GT(Counter(before.classes[0], ClassCounter::transitions), 0u);
  EXPECT_GT(before.classes[0].CoveredTransitions(), 0u);

  f.rt.ResetStats();

  EXPECT_EQ(f.rt.stats().events, 0u);
  EXPECT_EQ(f.rt.stats().overflows, 0u);
  EXPECT_EQ(f.rt.shard_pool_overflows(), 0u);
  metrics::Snapshot after = f.rt.CollectMetrics();
  ASSERT_EQ(after.classes.size(), 1u);
  for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
    EXPECT_EQ(after.classes[0].counters[k], 0u) << metrics::kClassCounterNames[k];
  }
  EXPECT_EQ(after.classes[0].CoveredTransitions(), 0u);

  // The runtime keeps working after the reset and the counters start fresh.
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {42};
  f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  metrics::Snapshot fresh = f.rt.CollectMetrics();
  EXPECT_GT(Counter(fresh.classes[0], ClassCounter::transitions), 0u);
  EXPECT_LT(Counter(fresh.classes[0], ClassCounter::transitions),
            Counter(before.classes[0], ClassCounter::transitions));
}

TEST(Metrics, ExpositionFormatsAreWellFormed) {
  Fixture f("TESLA_WITHIN(syscall, previously(check(x) == 0))",
            TestOptions(MetricsMode::kFull));
  ThreadContext ctx(f.rt);
  f.rt.OnFunctionCall(ctx, S("syscall"), {});
  int64_t args[] = {7};
  f.rt.OnFunctionReturn(ctx, S("check"), args, 0);
  f.rt.OnFunctionReturn(ctx, S("syscall"), {}, 0);
  metrics::Snapshot snapshot = f.rt.CollectMetrics();

  const std::string json = metrics::ToJson(snapshot);
  EXPECT_NE(json.find("\"mode\": \"counters+histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"m\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  const std::string prom = metrics::ToPrometheus(snapshot);
  EXPECT_NE(prom.find("# TYPE tesla_events_total counter"), std::string::npos);
  EXPECT_NE(prom.find("tesla_events_total 3"), std::string::npos);
  EXPECT_NE(prom.find("tesla_class_transitions_total{automaton=\"m\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE tesla_coverage_transitions gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE tesla_dispatch_latency_ns histogram"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  const std::string text = metrics::RenderText(snapshot);
  EXPECT_NE(text.find("metrics mode: counters+histograms"), std::string::npos);
  EXPECT_NE(text.find("per-class counters:"), std::string::npos);
  EXPECT_NE(text.find("transition coverage:"), std::string::npos);
}

TEST(Metrics, JsonEscapesHostileAutomatonNames) {
  metrics::Snapshot snapshot;
  snapshot.mode = MetricsMode::kCounters;
  metrics::ClassSnapshot cls;
  cls.name = "quote\" backslash\\ newline\n";
  for (size_t k = 0; k < metrics::kClassCounterCount; k++) {
    cls.counters[k] = 0;
  }
  snapshot.classes.push_back(cls);
  const std::string json = metrics::ToJson(snapshot);
  EXPECT_NE(json.find("quote\\\" backslash\\\\ newline\\n"), std::string::npos);
  const std::string prom = metrics::ToPrometheus(snapshot);
  EXPECT_NE(prom.find("quote\\\" backslash\\\\ newline\\n"), std::string::npos);
}

TEST(Metrics, CaptureFooterRoundTripsAndReplayMatches) {
  // Record a kernelsim run with counters on; the capture footer must carry
  // the exact snapshot, and a replay must reproduce it byte-for-byte (the
  // acceptance bar: counters and coverage are deterministic functions of the
  // event sequence).
  SetLogLevel(LogLevel::kSilent);
  const std::string path = TempPath("tesla_metrics_roundtrip.trace");
  RuntimeOptions options = TestOptions(MetricsMode::kCounters);
  options.trace_mode = trace::TraceMode::kFullCapture;
  Runtime rt(options);
  auto manifest = kernelsim::KernelAssertions(kernelsim::kSetAll);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(rt.Register(manifest.value()).ok());

  kernelsim::KernelConfig config;
  config.tesla = &rt;
  config.bugs.kqueue_missing_mac_check = true;
  kernelsim::Kernel kernel(config);
  kernelsim::Proc* proc = kernel.NewProcess(0);
  kernelsim::KThread td = kernel.NewThread(proc);
  kernelsim::OpenCloseLoop(kernel, td, 10);
  int64_t sock = kernel.SysSocket(td);
  kernel.SysConnect(td, sock);
  kernel.SysPoll(td, sock, 1);
  kernel.SysKevent(td, sock, 1);  // bug: poll without MAC check
  ASSERT_GE(rt.stats().violations, 1u);

  ASSERT_TRUE(trace::WriteCapture(path, "kernelsim:all", rt).ok());
  const std::string recorded = metrics::ToJson(rt.CollectMetrics());

  // The footer deserialises to the identical snapshot.
  auto read = trace::TraceFile::Read(path);
  ASSERT_TRUE(read.ok()) << read.error().ToString();
  ASSERT_EQ(read.value().version, trace::kTraceVersion);
  ASSERT_TRUE(read.value().summary.has_metrics);
  EXPECT_EQ(metrics::ToJson(read.value().summary.metrics), recorded);

  // Replaying reproduces counters and coverage exactly.
  auto replayed = trace::ReplayFile(path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().ToString();
  EXPECT_TRUE(replayed.value().matched) << replayed.value().divergence;
  EXPECT_EQ(metrics::ToJson(replayed.value().metrics), recorded);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tesla
